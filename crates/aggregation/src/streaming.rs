//! Sharded streaming aggregation: fold updates into bounded server state
//! as they arrive, instead of materializing the whole cohort (DESIGN.md
//! §4e).
//!
//! Two state families cover the rules that admit a streaming form:
//!
//! * **Mean family** ([`DefenseKind::FedAvg`], [`DefenseKind::NormBound`])
//!   — each update is folded into one of `shards` running weighted sums;
//!   [`StreamingAggregator::finalize`] merges the shard sums in shard
//!   index order and scales once by the reciprocal total weight. Resident
//!   state is O(shards · d), independent of the cohort size n.
//! * **Rank family** ([`DefenseKind::TrMean`], [`DefenseKind::Median`]) —
//!   per-coordinate order statistics need actual values, so updates land
//!   in a bounded reservoir of capacity `reservoir` (Vitter's Algorithm R
//!   with a deterministic splitmix64 coin). For cohorts up to the
//!   capacity the reservoir holds every update in arrival order and
//!   `finalize` is **bitwise identical** to the batch rule; beyond it the
//!   statistic is computed over a uniform sample — the documented
//!   degradation. Resident state is O(reservoir · d).
//!
//! Determinism: every admission decision is a pure function of
//! `(seed, arrival index)`, and `finalize` touches state in fixed (shard,
//! then coordinate) order, so a given push sequence always produces the
//! same aggregate, bit for bit, regardless of thread count or timing —
//! the streaming fold itself is single-threaded per aggregator.
//!
//! The mean-family fold uses a different float-op order than the batch
//! [`crate::FedAvg`] (per-shard `Σ w·x` then one scale, vs per-update
//! `Σ (w/W)·x`), so streaming results agree with batch only to rounding —
//! callers opt into the streaming path explicitly.
//!
//! Input validation (dimension, finiteness) is the transport layer's job:
//! the `fl` crate's streaming server quarantines malformed payloads before
//! they reach [`StreamingAggregator::push`], which only `debug_assert`s.

use crate::{AggError, Aggregation, DefenseKind, Selection};
use fabflip_tensor::vecops;

/// Sizing and seeding for a [`StreamingAggregator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamingConfig {
    /// Number of partial-sum shards for the mean family (≥ 1). More
    /// shards trade memory for merge-tree parallel headroom; the fold
    /// itself stays deterministic at any value.
    pub shards: usize,
    /// Reservoir capacity for the rank family (≥ 1). Cohorts up to this
    /// size aggregate bitwise-identically to the batch rule.
    pub reservoir: usize,
    /// Seed for the deterministic reservoir admission coin.
    pub seed: u64,
}

impl Default for StreamingConfig {
    fn default() -> StreamingConfig {
        StreamingConfig {
            shards: 8,
            reservoir: 4096,
            seed: 0x5EED_5EED,
        }
    }
}

/// Deterministic admission coin: splitmix64 of the seed-offset arrival
/// index. Pure in `(seed, t)`, so replaying a push sequence — on any
/// thread, after any crash/resume — reproduces every reservoir decision.
fn admission_coin(seed: u64, t: u64) -> u64 {
    let mut z = seed
        .wrapping_add(t.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Debug)]
enum State {
    /// Running weighted sums: `sums[s]` is the d-vector `Σ w·x` of shard
    /// `s`, `weights[s]` its `Σ w`.
    Mean {
        sums: Vec<Vec<f32>>,
        weights: Vec<f32>,
        /// `Some` for NormBound: the per-update delta budget.
        max_norm: Option<f32>,
    },
    /// Bounded uniform sample of raw updates (arrival order while not
    /// full).
    Reservoir { slots: Vec<Vec<f32>>, cap: usize },
}

/// One-pass, bounded-memory aggregation server state. Feed updates with
/// [`push`](StreamingAggregator::push), close the round with
/// [`finalize`](StreamingAggregator::finalize).
#[derive(Debug)]
pub struct StreamingAggregator {
    kind: DefenseKind,
    d: usize,
    seed: u64,
    count: usize,
    reference: Option<Vec<f32>>,
    state: State,
}

impl StreamingAggregator {
    /// Whether `kind` has a streaming form. The quadratic selection rules
    /// (Krum/mKrum/Bulyan/FoolsGold) need pairwise geometry and cannot
    /// stream; they take the blocked O(B·n)-resident kernels instead.
    pub fn supports(kind: DefenseKind) -> bool {
        matches!(
            kind,
            DefenseKind::FedAvg
                | DefenseKind::NormBound { .. }
                | DefenseKind::TrMean { .. }
                | DefenseKind::Median
        )
    }

    /// Creates streaming state for one round of `kind` over `d`-dimension
    /// updates. `reference` is the current global model `w(t)`, required
    /// by NormBound (it clips deltas against it) and ignored by the rest.
    ///
    /// # Errors
    ///
    /// [`AggError::InvalidParameter`] when the rule has no streaming form,
    /// `d == 0`, a config size is zero, or NormBound's reference has the
    /// wrong length.
    pub fn new(
        kind: DefenseKind,
        d: usize,
        cfg: StreamingConfig,
        reference: Option<Vec<f32>>,
    ) -> Result<StreamingAggregator, AggError> {
        if d == 0 {
            return Err(AggError::InvalidParameter(
                "streaming aggregator needs d >= 1".into(),
            ));
        }
        if cfg.shards == 0 || cfg.reservoir == 0 {
            return Err(AggError::InvalidParameter(
                "streaming shards and reservoir must be >= 1".into(),
            ));
        }
        if let Some(r) = &reference {
            if r.len() != d {
                return Err(AggError::LengthMismatch {
                    expected: d,
                    actual: r.len(),
                });
            }
        }
        let state = match kind {
            DefenseKind::FedAvg => State::Mean {
                sums: vec![vec![0.0; d]; cfg.shards],
                weights: vec![0.0; cfg.shards],
                max_norm: None,
            },
            DefenseKind::NormBound { max_norm_milli } => {
                if max_norm_milli == 0 {
                    return Err(AggError::InvalidParameter(
                        "norm bound must be positive".into(),
                    ));
                }
                State::Mean {
                    sums: vec![vec![0.0; d]; cfg.shards],
                    weights: vec![0.0; cfg.shards],
                    max_norm: Some(max_norm_milli as f32 / 1000.0),
                }
            }
            DefenseKind::TrMean { .. } | DefenseKind::Median => State::Reservoir {
                slots: Vec::new(),
                cap: cfg.reservoir,
            },
            other => {
                return Err(AggError::InvalidParameter(format!(
                    "{} has no streaming form",
                    other.label()
                )));
            }
        };
        Ok(StreamingAggregator {
            kind,
            d,
            seed: cfg.seed,
            count: 0,
            reference,
            state,
        })
    }

    /// The rule this aggregator streams for.
    pub fn kind(&self) -> DefenseKind {
        self.kind
    }

    /// Updates folded in so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Bytes of f32 aggregation state currently resident — the quantity
    /// the n-sweep benchmark reports. O(shards·d) or O(reservoir·d);
    /// never a function of the cohort size.
    pub fn resident_bytes(&self) -> usize {
        let f = std::mem::size_of::<f32>();
        match &self.state {
            State::Mean { sums, weights, .. } => (sums.len() * self.d + weights.len()) * f,
            State::Reservoir { slots, .. } => slots.len() * self.d * f,
        }
    }

    /// Folds one validated update into the round. `update` must be
    /// `d`-dimensional and all-finite (the transport layer quarantines
    /// everything else before this point); `weight` is the client's
    /// sample count and must be positive for weighted rules.
    pub fn ingest(&mut self, update: &[f32], weight: f32) {
        debug_assert_eq!(update.len(), self.d, "streaming ingest: wrong dimension");
        debug_assert!(
            update.iter().all(|x| x.is_finite()),
            "streaming ingest: non-finite payload reached the aggregator"
        );
        let t = self.count;
        self.count += 1;
        match &mut self.state {
            State::Mean {
                sums,
                weights,
                max_norm,
            } => {
                let shard = t % sums.len();
                let reference = self.reference.as_deref();
                // NormBound: rescale the delta `x − w(t)` to at most the
                // budget. The clipped value `r + s·(x − r)` matches the
                // batch rule's `add(r, scale(sub(x, r), s))` bit for bit
                // (IEEE multiplication is commutative and the delta
                // kernels reproduce the materialized op order).
                let scale = match *max_norm {
                    Some(bound) => {
                        let norm = match reference {
                            Some(r) => vecops::l2_norm_delta(update, r),
                            None => vecops::l2_norm(update),
                        };
                        if norm > bound {
                            bound / norm
                        } else {
                            1.0
                        }
                    }
                    None => 1.0,
                };
                // `shard < len` by construction; `get_mut` keeps the
                // ingest path free of panicking indexing.
                let (Some(sum), Some(wsum)) = (sums.get_mut(shard), weights.get_mut(shard)) else {
                    return;
                };
                match (*max_norm, reference) {
                    (Some(_), Some(r)) => {
                        for ((m, &x), &rv) in sum.iter_mut().zip(update).zip(r) {
                            *m += weight * (rv + scale * (x - rv));
                        }
                    }
                    (Some(_), None) => {
                        for (m, &x) in sum.iter_mut().zip(update) {
                            *m += weight * (x * scale);
                        }
                    }
                    (None, _) => {
                        for (m, &x) in sum.iter_mut().zip(update) {
                            *m += weight * x;
                        }
                    }
                }
                *wsum += weight;
            }
            State::Reservoir { slots, cap } => {
                if slots.len() < *cap {
                    // fabcheck::allow(alloc_on_hot_path): reservoir warm-up
                    // is bounded by the configured capacity, never by the
                    // cohort size; a full reservoir only overwrites.
                    slots.push(update.to_vec());
                } else {
                    // Algorithm R: replace a uniform slot with probability
                    // cap/(t+1), decided by the deterministic coin.
                    let j = admission_coin(self.seed, t as u64) % (t as u64 + 1);
                    if let Some(slot) = slots.get_mut(j as usize) {
                        slot.copy_from_slice(update);
                    }
                }
            }
        }
    }

    /// Closes the round: merges shard state (mean family, fixed shard
    /// order) or evaluates the per-coordinate statistic over the
    /// reservoir (rank family).
    ///
    /// # Errors
    ///
    /// [`AggError::NoUpdates`] when nothing was pushed,
    /// [`AggError::InvalidParameter`] when the total weight is not
    /// positive, and [`AggError::TooFewUpdates`] when the reservoir holds
    /// too few updates for TRmean's trim.
    pub fn finalize(self) -> Result<Aggregation, AggError> {
        if self.count == 0 {
            return Err(AggError::NoUpdates);
        }
        match self.state {
            State::Mean { sums, weights, .. } => {
                let total: f32 = weights.iter().sum();
                // NaN-aware: a NaN total must also refuse to finalize.
                if total.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                    return Err(AggError::InvalidParameter(
                        "total client weight is zero".into(),
                    ));
                }
                let mut model = vec![0.0f32; self.d];
                for sum in &sums {
                    for (m, &v) in model.iter_mut().zip(sum) {
                        *m += v;
                    }
                }
                let inv = 1.0 / total;
                for m in model.iter_mut() {
                    *m *= inv;
                }
                let selection = match self.kind {
                    DefenseKind::FedAvg => Selection::Chosen((0..self.count).collect()),
                    _ => Selection::PerCoordinate,
                };
                Ok(Aggregation {
                    model,
                    selection,
                    rejected_non_finite: Vec::new(),
                    rejected_malformed: Vec::new(),
                })
            }
            State::Reservoir { slots, .. } => {
                let refs: Vec<&[f32]> = slots.iter().map(|s| s.as_slice()).collect();
                let n = refs.len();
                let model = match self.kind {
                    DefenseKind::TrMean { trim } => {
                        if n <= 2 * trim {
                            return Err(AggError::TooFewUpdates {
                                rule: "trimmed-mean",
                                needed: 2 * trim + 1,
                                got: n,
                            });
                        }
                        vecops::trimmed_mean(&refs, trim)
                    }
                    _ => vecops::median(&refs),
                };
                Ok(Aggregation {
                    model,
                    selection: Selection::PerCoordinate,
                    rejected_non_finite: Vec::new(),
                    rejected_malformed: Vec::new(),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Defense, FedAvg, Median, NormBound, TrimmedMean};

    fn synth(n: usize, d: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|u| (0..d).map(|i| ((u * d + i) as f32 * 0.37).sin()).collect())
            .collect()
    }

    fn stream(
        kind: DefenseKind,
        cfg: StreamingConfig,
        ups: &[Vec<f32>],
        weights: &[f32],
        reference: Option<Vec<f32>>,
    ) -> Aggregation {
        let mut s = StreamingAggregator::new(kind, ups[0].len(), cfg, reference).unwrap();
        for (u, &w) in ups.iter().zip(weights) {
            s.ingest(u, w);
        }
        s.finalize().unwrap()
    }

    #[test]
    fn fedavg_stream_matches_batch_to_rounding() {
        let ups = synth(37, 11);
        let weights: Vec<f32> = (0..37).map(|i| 1.0 + (i % 5) as f32).collect();
        let batch = FedAvg::new().aggregate(&ups, &weights).unwrap();
        for shards in [1usize, 3, 8] {
            let cfg = StreamingConfig {
                shards,
                ..StreamingConfig::default()
            };
            let agg = stream(DefenseKind::FedAvg, cfg, &ups, &weights, None);
            for (a, b) in agg.model.iter().zip(&batch.model) {
                assert!((a - b).abs() <= 1e-5 * b.abs().max(1.0), "{a} vs {b}");
            }
            assert_eq!(agg.selection, Selection::Chosen((0..37).collect()));
        }
    }

    #[test]
    fn stream_is_bitwise_deterministic_across_replays() {
        let ups = synth(64, 7);
        let weights = vec![1.0f32; 64];
        for kind in [
            DefenseKind::FedAvg,
            DefenseKind::TrMean { trim: 3 },
            DefenseKind::Median,
        ] {
            let cfg = StreamingConfig {
                reservoir: 16, // force replacements for the rank family
                ..StreamingConfig::default()
            };
            let a = stream(kind, cfg, &ups, &weights, None);
            let b = stream(kind, cfg, &ups, &weights, None);
            for (x, y) in a.model.iter().zip(&b.model) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn rank_family_is_bitwise_batch_below_reservoir_capacity() {
        let ups = synth(41, 9);
        let weights = vec![1.0f32; 41];
        let cfg = StreamingConfig {
            reservoir: 41,
            ..StreamingConfig::default()
        };
        let med_stream = stream(DefenseKind::Median, cfg, &ups, &weights, None);
        let med_batch = Median::new().aggregate(&ups, &weights).unwrap();
        let tr_stream = stream(DefenseKind::TrMean { trim: 4 }, cfg, &ups, &weights, None);
        let tr_batch = TrimmedMean::new(4).aggregate(&ups, &weights).unwrap();
        for (s, b) in med_stream
            .model
            .iter()
            .zip(&med_batch.model)
            .chain(tr_stream.model.iter().zip(&tr_batch.model))
        {
            assert_eq!(s.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn over_capacity_reservoir_stays_in_value_range() {
        // 500 arrivals into 32 slots: the sampled median must stay inside
        // the data range and be reproducible.
        let ups = synth(500, 5);
        let weights = vec![1.0f32; 500];
        let cfg = StreamingConfig {
            reservoir: 32,
            ..StreamingConfig::default()
        };
        let agg = stream(DefenseKind::Median, cfg, &ups, &weights, None);
        for &m in &agg.model {
            assert!((-1.0..=1.0).contains(&m));
        }
        let again = stream(DefenseKind::Median, cfg, &ups, &weights, None);
        assert_eq!(agg.model, again.model);
    }

    #[test]
    fn normbound_stream_matches_batch_to_rounding() {
        let global = vec![0.5f32; 6];
        let mut ups = synth(20, 6);
        ups.push(vec![100.0; 6]); // clipped
        let weights = vec![1.0f32; 21];
        let nb = NormBound::new(1.5);
        let batch = nb
            .aggregate_with_reference(&ups, &weights, Some(&global))
            .unwrap();
        let cfg = StreamingConfig::default();
        let agg = stream(
            DefenseKind::NormBound {
                max_norm_milli: 1500,
            },
            cfg,
            &ups,
            &weights,
            Some(global),
        );
        for (a, b) in agg.model.iter().zip(&batch.model) {
            assert!((a - b).abs() <= 1e-5 * b.abs().max(1.0), "{a} vs {b}");
        }
        assert_eq!(agg.selection, Selection::PerCoordinate);
    }

    #[test]
    fn resident_bytes_is_independent_of_cohort_size() {
        let cfg = StreamingConfig {
            shards: 4,
            reservoir: 8,
            seed: 1,
        };
        let mut s = StreamingAggregator::new(DefenseKind::FedAvg, 16, cfg, None).unwrap();
        let fixed = s.resident_bytes();
        assert_eq!(fixed, (4 * 16 + 4) * 4);
        let u = vec![0.25f32; 16];
        for _ in 0..1000 {
            s.ingest(&u, 1.0);
        }
        assert_eq!(s.resident_bytes(), fixed);
        let mut r = StreamingAggregator::new(DefenseKind::Median, 16, cfg, None).unwrap();
        for _ in 0..1000 {
            r.ingest(&u, 1.0);
        }
        assert_eq!(r.resident_bytes(), 8 * 16 * 4);
    }

    #[test]
    fn rejects_unsupported_and_degenerate_configs() {
        assert!(!StreamingAggregator::supports(DefenseKind::Krum { f: 1 }));
        assert!(!StreamingAggregator::supports(DefenseKind::Bulyan { f: 2 }));
        assert!(StreamingAggregator::supports(DefenseKind::Median));
        let cfg = StreamingConfig::default();
        assert!(StreamingAggregator::new(DefenseKind::Krum { f: 1 }, 4, cfg, None).is_err());
        assert!(StreamingAggregator::new(DefenseKind::FedAvg, 0, cfg, None).is_err());
        let zero = StreamingConfig {
            shards: 0,
            ..StreamingConfig::default()
        };
        assert!(StreamingAggregator::new(DefenseKind::FedAvg, 4, zero, None).is_err());
        let short_ref = Some(vec![0.0; 3]);
        assert!(StreamingAggregator::new(
            DefenseKind::NormBound {
                max_norm_milli: 1000
            },
            4,
            cfg,
            short_ref
        )
        .is_err());
        let empty = StreamingAggregator::new(DefenseKind::FedAvg, 4, cfg, None).unwrap();
        assert!(matches!(empty.finalize(), Err(AggError::NoUpdates)));
        let mut few =
            StreamingAggregator::new(DefenseKind::TrMean { trim: 2 }, 2, cfg, None).unwrap();
        few.ingest(&[1.0, 2.0], 1.0);
        assert!(matches!(
            few.finalize(),
            Err(AggError::TooFewUpdates { .. })
        ));
    }
}
