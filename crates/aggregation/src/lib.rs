//! # fabflip-agg
//!
//! Byzantine-robust aggregation rules for federated learning — the defense
//! side of the `fabflip` reproduction (paper Sec. II-B):
//!
//! * [`FedAvg`] — the attack-free baseline, a sample-count-weighted mean,
//! * [`Krum`] / [`MultiKrum`] — outlier detection by cumulative squared
//!   distance to the nearest neighbours (Blanchard et al., 2017),
//! * [`TrimmedMean`] / [`Median`] — per-coordinate statistic defenses
//!   (Yin et al., 2018),
//! * [`Bulyan`] — iterative Multi-Krum selection followed by a per-
//!   coordinate trimmed mean around the median (El Mhamdi et al., 2018),
//! * [`FoolsGold`] — the Sybil defense class the paper's threat model
//!   discusses and deliberately excludes (Fung et al., 2020); implemented
//!   here as an extension so that exclusion argument is testable.
//!
//! Every rule implements [`Defense`] and returns an [`Aggregation`] carrying
//! both the new global model and a [`Selection`] describing *which* updates
//! were included — the information the paper's defense-pass-rate (DPR,
//! Eq. 5) is computed from. Statistic defenses report
//! [`Selection::PerCoordinate`], for which DPR is undefined ("NA" in the
//! paper's tables).
//!
//! Updates containing NaN/∞ are excluded up front (a production server must
//! not let one poisoned buffer corrupt the model); the excluded indices are
//! reported in [`Aggregation::rejected_non_finite`].
//!
//! # Examples
//!
//! ```
//! use fabflip_agg::{Defense, MultiKrum, Selection};
//!
//! let updates = vec![
//!     vec![1.0, 1.0], vec![1.1, 0.9], vec![0.9, 1.1], vec![1.0, 0.8],
//!     vec![9.0, 9.0], // outlier
//! ];
//! let mkrum = MultiKrum::new(1, 2)?; // tolerate f=1, select m=2
//! let agg = mkrum.aggregate(&updates, &[1.0; 5])?;
//! match agg.selection {
//!     fabflip_agg::Selection::Chosen(ref kept) => assert!(!kept.contains(&4)),
//!     _ => unreachable!(),
//! }
//! # Ok::<(), fabflip_agg::AggError>(())
//! ```

mod bulyan;
mod error;
mod fedavg;
mod fltrust;
mod foolsgold;
mod krum;
mod normbound;
mod statistic;
mod streaming;
mod types;

pub use bulyan::{bulyan_coordinate_chunk, Bulyan, BULYAN_DENSE_MAX};
pub use error::AggError;
pub use fedavg::FedAvg;
pub use fltrust::{fltrust_aggregate, FLTRUST_SELECT_CUTOFF};
pub use foolsgold::{foolsgold_weights, FoolsGold, FoolsGoldHistory};
pub use krum::{
    krum_scores, krum_scores_from_dists, krum_scores_into, Krum, MultiKrum, KRUM_ROW_BLOCK,
};
pub use normbound::NormBound;
pub use statistic::{Median, TrimmedMean};
pub use streaming::{StreamingAggregator, StreamingConfig};
pub use types::{Aggregation, Defense, DefenseKind, Selection};

#[cfg(test)]
mod proptests;
