use crate::types::finite_updates;
use crate::{AggError, Aggregation, Defense, Selection};

/// FedAvg (McMahan et al., 2017): the sample-count-weighted average of all
/// submitted updates — Eq. 2 of the paper. Offers no Byzantine robustness;
/// it is the "no defense" baseline whose accuracy defines `acc_natk`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FedAvg;

impl FedAvg {
    /// Creates the rule.
    pub fn new() -> FedAvg {
        FedAvg
    }
}

impl Defense for FedAvg {
    fn aggregate(&self, updates: &[Vec<f32>], weights: &[f32]) -> Result<Aggregation, AggError> {
        if weights.len() != updates.len() {
            return Err(AggError::LengthMismatch {
                expected: updates.len(),
                actual: weights.len(),
            });
        }
        let v = finite_updates(updates)?;
        let kept_weights: Vec<f32> = v.idx.iter().map(|&i| weights[i]).collect();
        let total: f32 = kept_weights.iter().sum();
        if total <= 0.0 {
            return Err(AggError::InvalidParameter(
                "total client weight is zero".into(),
            ));
        }
        let d = v.refs[0].len();
        let mut model = vec![0.0f32; d];
        for (r, &w) in v.refs.iter().zip(&kept_weights) {
            let alpha = w / total;
            for (m, &val) in model.iter_mut().zip(*r) {
                *m += alpha * val;
            }
        }
        Ok(Aggregation {
            model,
            selection: Selection::Chosen(v.idx),
            rejected_non_finite: v.rejected_non_finite,
            rejected_malformed: v.rejected_malformed,
        })
    }

    fn name(&self) -> &'static str {
        "FedAvg"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_average() {
        let ups = vec![vec![0.0, 0.0], vec![3.0, 6.0]];
        let agg = FedAvg::new().aggregate(&ups, &[1.0, 2.0]).unwrap();
        assert_eq!(agg.model, vec![2.0, 4.0]);
        assert_eq!(agg.selection, Selection::Chosen(vec![0, 1]));
        assert!(agg.rejected_non_finite.is_empty());
    }

    #[test]
    fn equal_weights_give_plain_mean() {
        let ups = vec![vec![1.0], vec![3.0]];
        let agg = FedAvg::new().aggregate(&ups, &[5.0, 5.0]).unwrap();
        assert_eq!(agg.model, vec![2.0]);
    }

    #[test]
    fn nan_update_is_rejected_not_propagated() {
        let ups = vec![vec![1.0], vec![f32::NAN]];
        let agg = FedAvg::new().aggregate(&ups, &[1.0, 1.0]).unwrap();
        assert_eq!(agg.model, vec![1.0]);
        assert_eq!(agg.rejected_non_finite, vec![1]);
    }

    #[test]
    fn errors_on_bad_weights() {
        let ups = vec![vec![1.0]];
        assert!(FedAvg::new().aggregate(&ups, &[]).is_err());
        assert!(FedAvg::new().aggregate(&ups, &[0.0]).is_err());
    }
}
