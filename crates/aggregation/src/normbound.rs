use crate::types::finite_updates;
use crate::{AggError, Aggregation, Defense, FedAvg, Selection};
use fabflip_tensor::vecops;

/// Norm-bounding aggregation — an *extension* defense of the kind the
/// paper's conclusion calls for ("FL is in need of stronger defenses").
///
/// Each update's delta `w_i − w(t)` is rescaled to at most `max_norm`
/// before weighted averaging. Unlike selection defenses it cannot be
/// "passed" or "failed" outright (every update contributes, just bounded),
/// so it reports [`Selection::PerCoordinate`] — DPR is NA, like the
/// statistic defenses.
///
/// Rationale against ZKA specifically: the fabricated-flip updates do not
/// need to be *far* from the global model to be harmful (that is their
/// stealth), but bounding the step size caps the per-round damage any
/// minority of clients can do.
///
/// Requires the reference model: use [`Defense::aggregate_with_reference`].
/// Without a reference it bounds the raw vectors (useful for delta-space
/// tests only).
#[derive(Debug, Clone, Copy)]
pub struct NormBound {
    max_norm: f32,
}

impl NormBound {
    /// Creates the rule with the given per-update delta budget.
    ///
    /// # Panics
    ///
    /// Panics when `max_norm <= 0`.
    pub fn new(max_norm: f32) -> NormBound {
        assert!(max_norm > 0.0, "norm bound must be positive");
        NormBound { max_norm }
    }

    fn clip(&self, refs: &[&[f32]], reference: Option<&[f32]>) -> Result<Vec<Vec<f32>>, AggError> {
        if let Some(r) = reference {
            if r.len() != refs[0].len() {
                return Err(AggError::LengthMismatch {
                    expected: refs[0].len(),
                    actual: r.len(),
                });
            }
        }
        Ok(refs
            .iter()
            .map(|u| {
                let delta = match reference {
                    Some(r) => vecops::sub(u, r),
                    None => u.to_vec(),
                };
                let norm = vecops::l2_norm(&delta);
                let scale = if norm > self.max_norm {
                    self.max_norm / norm
                } else {
                    1.0
                };
                match reference {
                    Some(r) => vecops::add(r, &vecops::scale(&delta, scale)),
                    None => vecops::scale(&delta, scale),
                }
            })
            .collect())
    }
}

impl Defense for NormBound {
    fn aggregate(&self, updates: &[Vec<f32>], weights: &[f32]) -> Result<Aggregation, AggError> {
        self.aggregate_with_reference(updates, weights, None)
    }

    fn aggregate_with_reference(
        &self,
        updates: &[Vec<f32>],
        weights: &[f32],
        reference: Option<&[f32]>,
    ) -> Result<Aggregation, AggError> {
        let v = finite_updates(updates)?;
        let kept_weights: Vec<f32> = v
            .idx
            .iter()
            .map(|&i| weights.get(i).copied().unwrap_or(1.0))
            .collect();
        let clipped = self.clip(&v.refs, reference)?;
        let mut agg = FedAvg::new().aggregate(&clipped, &kept_weights)?;
        // Clipping is per-coordinate-style smoothing, not selection. The
        // inner FedAvg only ever saw the survivors, so the rejection lists
        // come from this rule's own validation pass.
        agg.selection = Selection::PerCoordinate;
        agg.rejected_non_finite = v.rejected_non_finite;
        agg.rejected_malformed = v.rejected_malformed;
        Ok(agg)
    }

    fn name(&self) -> &'static str {
        "NormBound"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_outlier_delta() {
        let global = vec![1.0f32, 1.0];
        let ups = vec![
            vec![1.1f32, 1.0], // small delta, untouched
            vec![101.0, 1.0],  // huge delta, clipped to norm 1
        ];
        let nb = NormBound::new(1.0);
        let agg = nb
            .aggregate_with_reference(&ups, &[1.0, 1.0], Some(&global))
            .unwrap();
        // Aggregate = mean of [1.1, 1.0] and [2.0, 1.0] = [1.55, 1.0].
        assert!((agg.model[0] - 1.55).abs() < 1e-5, "{:?}", agg.model);
        assert!((agg.model[1] - 1.0).abs() < 1e-6);
        assert_eq!(agg.selection, Selection::PerCoordinate);
    }

    #[test]
    fn small_updates_pass_unchanged() {
        let global = vec![0.0f32; 3];
        let ups = vec![vec![0.1f32, 0.0, 0.0], vec![0.0, 0.1, 0.0]];
        let nb = NormBound::new(5.0);
        let agg = nb
            .aggregate_with_reference(&ups, &[1.0, 1.0], Some(&global))
            .unwrap();
        assert!((agg.model[0] - 0.05).abs() < 1e-6);
        assert!((agg.model[1] - 0.05).abs() < 1e-6);
    }

    #[test]
    fn caps_minority_damage() {
        // One attacker at distance 1000 among four benign at ~0.1: with the
        // bound the aggregate stays near the benign cluster.
        let global = vec![0.0f32; 2];
        let mut ups = vec![vec![0.1f32, 0.0]; 4];
        ups.push(vec![1000.0, -1000.0]);
        let nb = NormBound::new(0.5);
        let agg = nb
            .aggregate_with_reference(&ups, &[1.0; 5], Some(&global))
            .unwrap();
        assert!(vecops::l2_norm(&agg.model) < 0.3, "{:?}", agg.model);
    }

    #[test]
    fn works_without_reference_in_delta_space() {
        let ups = vec![vec![3.0f32, 4.0]]; // norm 5 → scaled to 1
        let nb = NormBound::new(1.0);
        let agg = nb.aggregate(&ups, &[1.0]).unwrap();
        assert!((vecops::l2_norm(&agg.model) - 1.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_bound() {
        let _ = NormBound::new(0.0);
    }
}
