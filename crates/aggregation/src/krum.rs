use crate::types::finite_updates;
use crate::{AggError, Aggregation, Defense, Selection};
use fabflip_tensor::scratch::{scratch_f32, Purpose};
use fabflip_tensor::vecops;

/// Row-block height for the blocked Krum scorer: at most this many
/// distance rows are resident at once (DESIGN.md §4e).
pub const KRUM_ROW_BLOCK: usize = 128;

/// Computes Krum scores (Blanchard et al., 2017): for each update, the sum
/// of squared L2 distances to its `n − f − 2` nearest other updates. Lower
/// is "more central".
///
/// Evaluated in row blocks of [`KRUM_ROW_BLOCK`] through a
/// [`Purpose::DistTile`] scratch tile, so resident memory is O(B·n)
/// instead of the dense O(n²). Bitwise identical to scoring against the
/// dense matrix: `sq_distance(a, b) == sq_distance(b, a)` exactly (each
/// lane negates, and IEEE negation and multiplication are exact/
/// commutative), so computing full rows directly equals the historical
/// upper-triangle-plus-mirror fill, and the per-row gather → sort → sum
/// sequence is the same code path as [`krum_scores_into`].
///
/// # Errors
///
/// Returns [`AggError::TooFewUpdates`] when `n < f + 3`.
pub fn krum_scores(refs: &[&[f32]], f: usize) -> Result<Vec<f32>, AggError> {
    let n = refs.len();
    if n < f + 3 {
        return Err(AggError::TooFewUpdates {
            rule: "krum",
            needed: f + 3,
            got: n,
        });
    }
    let d = refs[0].len();
    let k = n - f - 2;
    let block = KRUM_ROW_BLOCK.min(n);
    let mut scores = vec![0.0f32; n];
    let mut tile = scratch_f32(Purpose::DistTile, block * n);
    let mut row = scratch_f32(Purpose::KrumRow, n - 1);
    let mut lo = 0;
    while lo < n {
        let rows = block.min(n - lo);
        let tile = &mut tile[..rows * n];
        vecops::pairwise_tile_into(lo, 0, n, d, tile, |i, j| {
            vecops::sq_distance(refs[i], refs[j])
        });
        for (r, drow) in tile.chunks(n).enumerate() {
            let i = lo + r;
            let mut w = 0;
            for (j, &dist) in drow.iter().enumerate() {
                if j != i {
                    row[w] = dist;
                    w += 1;
                }
            }
            row.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            scores[i] = row[..k].iter().sum();
        }
        lo += rows;
    }
    Ok(scores)
}

/// Krum scores for a `pool` of row/column indices into a precomputed flat
/// row-major `n_total × n_total` pairwise squared-distance matrix (as
/// filled by [`vecops::pairwise_sq_distances_into`]). Returns one score per
/// pool entry, in pool order, bitwise identical to [`krum_scores`] on the
/// pool's vectors. The sort row lives in a [`Purpose::KrumRow`] scratch
/// arena; allocation is limited to the returned `Vec`.
///
/// Bulyan's iterative selection uses the `*_into` form below with a
/// shrinking pool so the O(n²·d) distance pass runs once instead of once
/// per selection round.
///
/// # Errors
///
/// Returns [`AggError::TooFewUpdates`] when the pool has fewer than `f + 3`
/// entries.
pub fn krum_scores_from_dists(
    dists: &[f32],
    n_total: usize,
    pool: &[usize],
    f: usize,
) -> Result<Vec<f32>, AggError> {
    let n = pool.len();
    if n < f + 3 {
        return Err(AggError::TooFewUpdates {
            rule: "krum",
            needed: f + 3,
            got: n,
        });
    }
    let mut scores = vec![0.0f32; n];
    let mut row = scratch_f32(Purpose::KrumRow, n - 1);
    krum_scores_into(dists, n_total, pool, f, &mut scores, &mut row)?;
    Ok(scores)
}

/// Allocation-free Krum scoring kernel: writes one score per `pool` entry
/// into `scores` using `row` (length exactly `pool.len() − 1`) as the
/// nearest-neighbour sort workspace. `dists` is the flat row-major
/// `n_total × n_total` squared-distance matrix the pool indexes into. The
/// neighbour sort is `sort_unstable_by` — in-place, allocation-free, and
/// value-identical for equal `f32` keys, so scores match the stable-sorted
/// history bit for bit.
///
/// # Errors
///
/// Returns [`AggError::TooFewUpdates`] when the pool has fewer than `f + 3`
/// entries.
///
/// # Panics
///
/// Panics when `scores.len() != pool.len()`, `row.len() != pool.len() − 1`,
/// or a pool index falls outside the matrix.
pub fn krum_scores_into(
    dists: &[f32],
    n_total: usize,
    pool: &[usize],
    f: usize,
    scores: &mut [f32],
    row: &mut [f32],
) -> Result<(), AggError> {
    let n = pool.len();
    if n < f + 3 {
        return Err(AggError::TooFewUpdates {
            rule: "krum",
            needed: f + 3,
            got: n,
        });
    }
    assert_eq!(scores.len(), n, "krum: one score slot per pool entry");
    assert_eq!(row.len(), n - 1, "krum: row workspace must hold n-1 dists");
    let k = n - f - 2;
    for (s, &i) in scores.iter_mut().zip(pool) {
        // Checked gather of i's distances to the rest of the pool: a miss
        // is impossible (`dists` is the full n_total² matrix) and maps to
        // +inf so misuse would surface in the scores, not a panic.
        let others = pool
            .iter()
            .filter(|&&j| j != i)
            .map(|&j| dists.get(i * n_total + j).copied().unwrap_or(f32::INFINITY));
        for (slot, dist) in row.iter_mut().zip(others) {
            *slot = dist;
        }
        row.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        *s = row.iter().take(k).sum();
    }
    Ok(())
}

/// Classic Krum: selects the single update with the lowest score.
#[derive(Debug, Clone, Copy)]
pub struct Krum {
    f: usize,
}

impl Krum {
    /// Creates Krum tolerating `f` Byzantine clients.
    pub fn new(f: usize) -> Krum {
        Krum { f }
    }
}

impl Defense for Krum {
    fn aggregate(&self, updates: &[Vec<f32>], _weights: &[f32]) -> Result<Aggregation, AggError> {
        let v = finite_updates(updates)?;
        let scores = krum_scores(&v.refs, self.f)?;
        let best = scores
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .expect("scores nonempty");
        Ok(Aggregation {
            model: v.refs[best].to_vec(),
            selection: Selection::Chosen(vec![v.idx[best]]),
            rejected_non_finite: v.rejected_non_finite,
            rejected_malformed: v.rejected_malformed,
        })
    }

    fn name(&self) -> &'static str {
        "Krum"
    }
}

/// Multi-Krum (mKrum): selects the `m` lowest-score updates and averages
/// them — interpolating between Krum (`m = 1`) and plain averaging
/// (`m = n`). The paper's default is `m = n − f − 2`.
#[derive(Debug, Clone, Copy)]
pub struct MultiKrum {
    f: usize,
    m: Option<usize>,
}

impl MultiKrum {
    /// Creates Multi-Krum tolerating `f` Byzantine clients and selecting
    /// exactly `m` updates.
    ///
    /// # Errors
    ///
    /// Returns [`AggError::InvalidParameter`] when `m == 0`.
    pub fn new(f: usize, m: usize) -> Result<MultiKrum, AggError> {
        if m == 0 {
            return Err(AggError::InvalidParameter("mKrum needs m >= 1".into()));
        }
        Ok(MultiKrum { f, m: Some(m) })
    }

    /// Creates Multi-Krum with the default selection size `m = n − f − 2`
    /// (resolved per round from the number of submitted updates).
    pub fn with_default_m(f: usize) -> MultiKrum {
        MultiKrum { f, m: None }
    }
}

impl Defense for MultiKrum {
    fn aggregate(&self, updates: &[Vec<f32>], _weights: &[f32]) -> Result<Aggregation, AggError> {
        let v = finite_updates(updates)?;
        let n = v.refs.len();
        let scores = krum_scores(&v.refs, self.f)?;
        let m = self.m.unwrap_or_else(|| (n - self.f - 2).max(1)).min(n);
        let mut order: Vec<usize> = (0..n).collect();
        // Index tie-break: equal scores must order deterministically or
        // the selected cohort depends on the (unstable) sort's whims.
        order.sort_by(|&a, &b| {
            (scores[a], a)
                .partial_cmp(&(scores[b], b))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let chosen_local = &order[..m];
        let chosen_refs: Vec<&[f32]> = chosen_local.iter().map(|&i| v.refs[i]).collect();
        let model = vecops::mean(&chosen_refs);
        let mut chosen: Vec<usize> = chosen_local.iter().map(|&i| v.idx[i]).collect();
        chosen.sort_unstable();
        Ok(Aggregation {
            model,
            selection: Selection::Chosen(chosen),
            rejected_non_finite: v.rejected_non_finite,
            rejected_malformed: v.rejected_malformed,
        })
    }

    fn name(&self) -> &'static str {
        "mKrum"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster_with_outlier() -> Vec<Vec<f32>> {
        vec![
            vec![1.0, 1.0],
            vec![1.1, 0.9],
            vec![0.9, 1.1],
            vec![1.05, 1.0],
            vec![0.95, 1.0],
            vec![50.0, -50.0],
        ]
    }

    #[test]
    fn scores_rank_outlier_last() {
        let ups = cluster_with_outlier();
        let refs: Vec<&[f32]> = ups.iter().map(|u| u.as_slice()).collect();
        let scores = krum_scores(&refs, 1).unwrap();
        let worst = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(worst, 5);
    }

    #[test]
    fn krum_picks_a_cluster_member() {
        let ups = cluster_with_outlier();
        let agg = Krum::new(1).aggregate(&ups, &[1.0; 6]).unwrap();
        match agg.selection {
            Selection::Chosen(ref c) => {
                assert_eq!(c.len(), 1);
                assert!(c[0] < 5, "picked the outlier");
            }
            _ => panic!("krum must report a selection"),
        }
        // Output equals the chosen update verbatim.
        assert!((agg.model[0] - 1.0).abs() < 0.2);
    }

    #[test]
    fn mkrum_excludes_outlier_and_averages() {
        let ups = cluster_with_outlier();
        let agg = MultiKrum::new(1, 3)
            .unwrap()
            .aggregate(&ups, &[1.0; 6])
            .unwrap();
        match agg.selection {
            Selection::Chosen(ref c) => {
                assert_eq!(c.len(), 3);
                assert!(!c.contains(&5));
            }
            _ => panic!(),
        }
        assert!((agg.model[0] - 1.0).abs() < 0.15);
        assert!((agg.model[1] - 1.0).abs() < 0.15);
    }

    #[test]
    fn default_m_is_n_minus_f_minus_2() {
        let ups = cluster_with_outlier(); // n = 6
        let agg = MultiKrum::with_default_m(1)
            .aggregate(&ups, &[1.0; 6])
            .unwrap();
        match agg.selection {
            Selection::Chosen(ref c) => assert_eq!(c.len(), 3), // 6 - 1 - 2
            _ => panic!(),
        }
    }

    #[test]
    fn too_few_updates_is_an_error() {
        let ups = vec![vec![1.0], vec![2.0], vec![3.0]];
        assert!(matches!(
            Krum::new(1).aggregate(&ups, &[1.0; 3]),
            Err(AggError::TooFewUpdates { .. })
        ));
    }

    #[test]
    fn mkrum_rejects_zero_m() {
        assert!(MultiKrum::new(1, 0).is_err());
    }

    #[test]
    fn blocked_scores_match_dense_matrix_bitwise() {
        // n > KRUM_ROW_BLOCK so the tile loop takes more than one block.
        let n = KRUM_ROW_BLOCK + 29;
        let ups: Vec<Vec<f32>> = (0..n)
            .map(|u| {
                (0..17)
                    .map(|i| ((u * 17 + i) as f32 * 0.13).sin())
                    .collect()
            })
            .collect();
        let refs: Vec<&[f32]> = ups.iter().map(|u| u.as_slice()).collect();
        let blocked = krum_scores(&refs, 7).unwrap();
        let mut dists = vec![0.0f32; n * n];
        vecops::pairwise_sq_distances_into(&refs, &mut dists);
        let pool: Vec<usize> = (0..n).collect();
        let dense = krum_scores_from_dists(&dists, n, &pool, 7).unwrap();
        for (b, d) in blocked.iter().zip(&dense) {
            assert_eq!(b.to_bits(), d.to_bits());
        }
    }

    #[test]
    fn nan_update_cannot_hide_in_selection() {
        let mut ups = cluster_with_outlier();
        ups[5] = vec![f32::NAN, f32::NAN];
        let agg = MultiKrum::new(1, 3)
            .unwrap()
            .aggregate(&ups, &[1.0; 6])
            .unwrap();
        assert_eq!(agg.rejected_non_finite, vec![5]);
        assert!(agg.model.iter().all(|v| v.is_finite()));
    }
}

#[cfg(test)]
mod sybil_geometry_tests {
    use super::*;
    use crate::Selection;

    /// Documents the identical-copy phenomenon observed in the evaluation
    /// (EXPERIMENTS.md, micro_random): duplicate malicious updates have
    /// zero mutual distance, which *lowers* their Krum scores and can pull
    /// them into a selection that would reject a single copy. Distance
    /// defenses punish outliers, not collusion — that is exactly the gap
    /// Sybil defenses like FoolsGold fill.
    #[test]
    fn identical_copies_lower_each_others_krum_scores() {
        // Two rounds with the same total population n = 8 (so Krum's
        // neighbour count k is identical): 7 benign + 1 malicious copy vs
        // 6 benign + 2 identical malicious copies.
        let benign = |count: usize| -> Vec<Vec<f32>> {
            (0..count)
                .map(|i| {
                    let e = (i as f32 * 0.9).sin() * 0.2;
                    vec![1.0 + e, -1.0 - e, 0.5]
                })
                .collect()
        };
        let mal = vec![2.5f32, -2.5, 1.5];

        let mut one_copy = benign(7);
        one_copy.push(mal.clone());
        let refs1: Vec<&[f32]> = one_copy.iter().map(|u| u.as_slice()).collect();
        let s1 = krum_scores(&refs1, 2).unwrap();

        let mut two_copies = benign(6);
        two_copies.push(mal.clone());
        two_copies.push(mal.clone());
        let refs2: Vec<&[f32]> = two_copies.iter().map(|u| u.as_slice()).collect();
        let s2 = krum_scores(&refs2, 2).unwrap();

        // The malicious score strictly improves when a twin is present
        // (one of its k nearest-neighbour distances becomes zero).
        assert!(
            s2[6] < s1[7],
            "twin should lower the malicious score: {} !< {}",
            s2[6],
            s1[7]
        );
    }

    #[test]
    fn foolsgold_catches_what_mkrum_tolerates() {
        // The same colluding geometry: mKrum may select the twins, the
        // Sybil defense never does.
        use crate::{Defense, FoolsGold};
        let mut ups: Vec<Vec<f32>> = (0..6)
            .map(|i| {
                let e = (i as f32 * 2.1).sin();
                vec![e, (i as f32 * 1.3).cos(), -e, 0.4 * e, 1.0 - e, e * e]
            })
            .collect();
        let mal = vec![0.3f32, 0.3, 0.3, 0.3, 0.3, 0.3];
        ups.push(mal.clone());
        ups.push(mal);
        let fg = FoolsGold::new().aggregate(&ups, &[1.0; 8]).unwrap();
        match fg.selection {
            Selection::Chosen(ref c) => {
                assert!(
                    !c.contains(&6) && !c.contains(&7),
                    "foolsgold missed the twins: {c:?}"
                );
            }
            _ => panic!(),
        }
    }
}
