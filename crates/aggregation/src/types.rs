use crate::{AggError, Bulyan, FedAvg, FoolsGold, Krum, Median, MultiKrum, NormBound, TrimmedMean};
use serde::{Deserialize, Serialize};

/// Which updates an aggregation rule included in the new global model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Selection {
    /// Indices (into the submitted update list) of updates that were
    /// selected and averaged. DPR (paper Eq. 5) is computable.
    Chosen(Vec<usize>),
    /// The rule combined statistics of every update per coordinate (median,
    /// trimmed mean); no per-update selection exists and DPR is "NA".
    PerCoordinate,
}

impl Selection {
    /// Whether a per-update selection is available (i.e. DPR is defined).
    pub fn supports_dpr(&self) -> bool {
        matches!(self, Selection::Chosen(_))
    }
}

/// The result of one aggregation round.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregation {
    /// The new global model (flat parameter vector).
    pub model: Vec<f32>,
    /// Which updates were included.
    pub selection: Selection,
    /// Indices of updates discarded up front for containing NaN/∞.
    pub rejected_non_finite: Vec<usize>,
    /// Indices of updates discarded up front for having the wrong length
    /// (truncated or padded payloads). Like the non-finite filter, a
    /// malformed update must never panic an aggregator or corrupt the
    /// model — it is rejected and reported.
    pub rejected_malformed: Vec<usize>,
}

/// A Byzantine-robust aggregation rule.
///
/// Implementations must be deterministic functions of their inputs: the
/// simulator relies on this for reproducible runs.
pub trait Defense: Send + Sync {
    /// Aggregates `updates` (flat parameter vectors, one per client) with
    /// per-client sample-count `weights` (used only by weighted rules;
    /// robust rules ignore them, as in the original papers).
    ///
    /// # Errors
    ///
    /// Returns [`AggError`] when no finite updates remain, lengths are
    /// inconsistent, or the rule's robustness precondition fails.
    fn aggregate(&self, updates: &[Vec<f32>], weights: &[f32]) -> Result<Aggregation, AggError>;

    /// Short rule name for reports, e.g. `"mKrum"`.
    fn name(&self) -> &'static str;

    /// Aggregates with an optional *reference model* (the current global
    /// model `w(t)`). Distance-based rules are shift-invariant and ignore
    /// it — the default delegates to [`Defense::aggregate`] — but
    /// similarity-based rules (FoolsGold) must measure update *deltas*
    /// `w_i − w(t)`, which are not shift-invariant.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Defense::aggregate`].
    fn aggregate_with_reference(
        &self,
        updates: &[Vec<f32>],
        weights: &[f32],
        _reference: Option<&[f32]>,
    ) -> Result<Aggregation, AggError> {
        self.aggregate(updates, weights)
    }
}

/// Serializable defense configuration — the experiment-grid axis of the
/// paper's evaluation. Build the actual rule with [`DefenseKind::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DefenseKind {
    /// Plain weighted averaging (no defense).
    FedAvg,
    /// Classic Krum selecting a single update; `f` is the tolerated number
    /// of Byzantine clients.
    Krum {
        /// Tolerated Byzantine count.
        f: usize,
    },
    /// Multi-Krum: select the `m = n − f − 2` lowest-score updates.
    MKrum {
        /// Tolerated Byzantine count.
        f: usize,
    },
    /// Per-coordinate trimmed mean dropping `trim` values at each extreme.
    TrMean {
        /// Values trimmed per side.
        trim: usize,
    },
    /// Per-coordinate median.
    Median,
    /// Bulyan with tolerated Byzantine count `f`.
    Bulyan {
        /// Tolerated Byzantine count.
        f: usize,
    },
    /// FoolsGold cosine-similarity Sybil defense (extension; the paper's
    /// evaluation excludes Sybil defenses).
    FoolsGold,
    /// Norm-bounded averaging (extension: the "stronger defense" direction
    /// of the paper's conclusion).
    NormBound {
        /// Maximum L2 norm of each update's delta from the global model.
        /// Serialized as milli-units (integer) to keep the kind `Eq`-able
        /// and hashable for result caching.
        max_norm_milli: u32,
    },
}

impl DefenseKind {
    /// The four defenses of the paper's evaluation plus the FedAvg baseline,
    /// parameterized for `n` submitted updates and a server-assumed
    /// Byzantine count `f` (the paper's setting: n = 10, f = 2).
    pub fn paper_grid(f: usize) -> Vec<DefenseKind> {
        vec![
            DefenseKind::MKrum { f },
            DefenseKind::TrMean { trim: f },
            DefenseKind::Bulyan { f },
            DefenseKind::Median,
        ]
    }

    /// Instantiates the rule.
    ///
    /// # Errors
    ///
    /// Returns [`AggError::InvalidParameter`] for degenerate parameters.
    pub fn build(&self) -> Result<Box<dyn Defense>, AggError> {
        Ok(match *self {
            DefenseKind::FedAvg => Box::new(FedAvg::new()),
            DefenseKind::Krum { f } => Box::new(Krum::new(f)),
            DefenseKind::MKrum { f } => Box::new(MultiKrum::with_default_m(f)),
            DefenseKind::TrMean { trim } => Box::new(TrimmedMean::new(trim)),
            DefenseKind::Median => Box::new(Median::new()),
            DefenseKind::Bulyan { f } => Box::new(Bulyan::new(f)),
            DefenseKind::FoolsGold => Box::new(FoolsGold::new()),
            DefenseKind::NormBound { max_norm_milli } => {
                if max_norm_milli == 0 {
                    return Err(AggError::InvalidParameter(
                        "norm bound must be positive".into(),
                    ));
                }
                Box::new(NormBound::new(max_norm_milli as f32 / 1000.0))
            }
        })
    }

    /// Degrades the rule's parameters to what a surviving cohort of `n`
    /// updates supports — the dynamic-quorum half of the fault model
    /// (DESIGN.md §4d). Returns the effective kind to build for this
    /// round, or `None` when no sound instantiation exists and the round
    /// must be skipped (global model carried forward).
    ///
    /// The tolerated-Byzantine bound is only ever *capped*, never raised:
    /// the configured `f` is the server's standing assumption, and a
    /// shrunken cohort can only lower what the rule's precondition
    /// admits.
    ///
    /// * Krum / mKrum need `n ≥ f + 3` → `f_dyn = min(f, n − 3)`,
    ///   requiring `n ≥ 3`.
    /// * TRmean needs `n ≥ 2·trim + 1` → `trim_dyn = min(trim, (n−1)/2)`.
    /// * Bulyan needs `θ = n − 2f ≥ 1` *and* `n ≥ θ + f + 2`, which
    ///   together force `f ≥ 2` and `n ≥ 2f + 1` → `f_dyn = min(f,
    ///   (n−1)/2)`, skipping whenever `f_dyn < 2` (i.e. `n < 5`).
    /// * FedAvg / Median / FoolsGold / NormBound accept any `n ≥ 1`.
    pub fn for_cohort(&self, n: usize) -> Option<DefenseKind> {
        if n == 0 {
            return None;
        }
        Some(match *self {
            DefenseKind::Krum { f } => {
                if n < 3 {
                    return None;
                }
                DefenseKind::Krum { f: f.min(n - 3) }
            }
            DefenseKind::MKrum { f } => {
                if n < 3 {
                    return None;
                }
                DefenseKind::MKrum { f: f.min(n - 3) }
            }
            DefenseKind::TrMean { trim } => DefenseKind::TrMean {
                trim: trim.min((n - 1) / 2),
            },
            DefenseKind::Bulyan { f } => {
                let f_dyn = f.min((n - 1) / 2);
                if f_dyn < 2 {
                    return None;
                }
                DefenseKind::Bulyan { f: f_dyn }
            }
            other => other,
        })
    }

    /// Stable display name matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            DefenseKind::FedAvg => "FedAvg",
            DefenseKind::Krum { .. } => "Krum",
            DefenseKind::MKrum { .. } => "mKrum",
            DefenseKind::TrMean { .. } => "TRmean",
            DefenseKind::Median => "Median",
            DefenseKind::Bulyan { .. } => "Bulyan",
            DefenseKind::FoolsGold => "FoolsGold",
            DefenseKind::NormBound { .. } => "NormBound",
        }
    }
}

/// The survivors of the shared up-front update validation, plus the
/// rejection bookkeeping every [`Aggregation`] reports.
pub(crate) struct ValidUpdates<'a> {
    /// Indices (into the submitted list) of the kept updates.
    pub idx: Vec<usize>,
    /// The kept updates, in submission order.
    pub refs: Vec<&'a [f32]>,
    /// Indices rejected for NaN/∞.
    pub rejected_non_finite: Vec<usize>,
    /// Indices rejected for wrong length.
    pub rejected_malformed: Vec<usize>,
}

/// The modal update length: what the cohort agrees the model dimension
/// is. Ties break toward the smaller length (deterministically). With a
/// benign majority this is always the true dimension; a lone truncated or
/// padded payload can never redefine it.
fn expected_len(updates: &[Vec<f32>]) -> usize {
    let mut lens: Vec<usize> = updates.iter().map(Vec::len).collect();
    lens.sort_unstable();
    let (mut best, mut best_count) = (lens[0], 0usize);
    let mut i = 0;
    while i < lens.len() {
        let mut j = i;
        while j < lens.len() && lens[j] == lens[i] {
            j += 1;
        }
        if j - i > best_count {
            best = lens[i];
            best_count = j - i;
        }
        i = j;
    }
    best
}

/// Validates submitted updates, filtering out (never erroring on, and
/// never panicking over) malformed ones: wrong-length payloads are
/// rejected against the cohort's modal length, non-finite payloads
/// against IEEE sanity. Every aggregation rule runs this first, so one
/// corrupt buffer cannot crash a round.
///
/// # Errors
///
/// Returns [`AggError::NoUpdates`] when no valid update remains.
pub(crate) fn finite_updates(updates: &[Vec<f32>]) -> Result<ValidUpdates<'_>, AggError> {
    if updates.is_empty() {
        return Err(AggError::NoUpdates);
    }
    let d = expected_len(updates);
    let mut v = ValidUpdates {
        idx: Vec::new(),
        refs: Vec::new(),
        rejected_non_finite: Vec::new(),
        rejected_malformed: Vec::new(),
    };
    for (i, u) in updates.iter().enumerate() {
        if u.len() != d {
            v.rejected_malformed.push(i);
        } else if u.iter().all(|x| x.is_finite()) {
            v.idx.push(i);
            v.refs.push(u.as_slice());
        } else {
            v.rejected_non_finite.push(i);
        }
    }
    if v.refs.is_empty() {
        return Err(AggError::NoUpdates);
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_builds_and_labels() {
        for kind in [
            DefenseKind::FedAvg,
            DefenseKind::Krum { f: 1 },
            DefenseKind::MKrum { f: 2 },
            DefenseKind::TrMean { trim: 2 },
            DefenseKind::Median,
            DefenseKind::Bulyan { f: 2 },
            DefenseKind::FoolsGold,
            DefenseKind::NormBound {
                max_norm_milli: 500,
            },
        ] {
            let d = kind.build().unwrap();
            assert!(!d.name().is_empty());
            assert!(!kind.label().is_empty());
        }
    }

    #[test]
    fn paper_grid_is_the_four_defenses() {
        let grid = DefenseKind::paper_grid(2);
        let labels: Vec<&str> = grid.iter().map(|k| k.label()).collect();
        assert_eq!(labels, vec!["mKrum", "TRmean", "Bulyan", "Median"]);
    }

    #[test]
    fn normbound_kind_rejects_zero() {
        assert!(DefenseKind::NormBound { max_norm_milli: 0 }
            .build()
            .is_err());
    }

    #[test]
    fn kind_roundtrips_through_serde() {
        let kind = DefenseKind::Bulyan { f: 2 };
        let s = serde_json::to_string(&kind).unwrap();
        let back: DefenseKind = serde_json::from_str(&s).unwrap();
        assert_eq!(kind, back);
    }

    #[test]
    fn finite_filter_drops_nan_updates() {
        let ups = vec![vec![1.0, 2.0], vec![f32::NAN, 0.0], vec![3.0, 4.0]];
        let v = finite_updates(&ups).unwrap();
        assert_eq!(v.idx, vec![0, 2]);
        assert_eq!(v.refs.len(), 2);
        assert_eq!(v.rejected_non_finite, vec![1]);
        assert!(v.rejected_malformed.is_empty());
        let all_bad = vec![vec![f32::INFINITY]];
        assert!(matches!(finite_updates(&all_bad), Err(AggError::NoUpdates)));
        assert!(matches!(finite_updates(&[]), Err(AggError::NoUpdates)));
    }

    #[test]
    fn wrong_length_updates_are_filtered_not_fatal() {
        // The 2-element majority defines the model dimension; the
        // truncated and the padded payload are quarantined.
        let ups = vec![vec![1.0, 2.0], vec![9.0], vec![3.0, 4.0], vec![0.0; 5]];
        let v = finite_updates(&ups).unwrap();
        assert_eq!(v.idx, vec![0, 2]);
        assert_eq!(v.rejected_malformed, vec![1, 3]);
        assert!(v.rejected_non_finite.is_empty());
        // Length ties break toward the smaller length, deterministically.
        let tie = vec![vec![1.0], vec![1.0, 2.0]];
        let v = finite_updates(&tie).unwrap();
        assert_eq!(v.idx, vec![0]);
        assert_eq!(v.rejected_malformed, vec![1]);
    }

    #[test]
    fn for_cohort_caps_f_and_skips_impossible_rounds() {
        let krum = DefenseKind::Krum { f: 2 };
        assert_eq!(krum.for_cohort(10), Some(krum));
        assert_eq!(krum.for_cohort(4), Some(DefenseKind::Krum { f: 1 }));
        assert_eq!(krum.for_cohort(3), Some(DefenseKind::Krum { f: 0 }));
        assert_eq!(krum.for_cohort(2), None);
        let mkrum = DefenseKind::MKrum { f: 2 };
        assert_eq!(mkrum.for_cohort(5), Some(mkrum));
        assert_eq!(mkrum.for_cohort(4), Some(DefenseKind::MKrum { f: 1 }));
        let tr = DefenseKind::TrMean { trim: 2 };
        assert_eq!(tr.for_cohort(5), Some(tr));
        assert_eq!(tr.for_cohort(3), Some(DefenseKind::TrMean { trim: 1 }));
        assert_eq!(tr.for_cohort(1), Some(DefenseKind::TrMean { trim: 0 }));
        let bul = DefenseKind::Bulyan { f: 2 };
        assert_eq!(bul.for_cohort(10), Some(bul));
        assert_eq!(bul.for_cohort(5), Some(bul));
        assert_eq!(bul.for_cohort(4), None);
        // Degraded parameters must satisfy the rule they will instantiate:
        // every Some(kind) builds and aggregates a cohort of that size.
        for kind in [
            krum,
            mkrum,
            tr,
            bul,
            DefenseKind::FedAvg,
            DefenseKind::Median,
        ] {
            for n in 1..=10usize {
                if let Some(k) = kind.for_cohort(n) {
                    let ups: Vec<Vec<f32>> = (0..n)
                        .map(|i| vec![i as f32 * 0.1, 1.0 - i as f32])
                        .collect();
                    let rule = k.build().unwrap();
                    assert!(
                        rule.aggregate(&ups, &vec![1.0; n]).is_ok(),
                        "{kind:?} degraded to {k:?} must aggregate n = {n}"
                    );
                }
            }
            assert_eq!(kind.for_cohort(0), None);
        }
    }

    #[test]
    fn selection_dpr_support() {
        assert!(Selection::Chosen(vec![0]).supports_dpr());
        assert!(!Selection::PerCoordinate.supports_dpr());
    }
}
