use crate::{AggError, Bulyan, FedAvg, FoolsGold, Krum, Median, MultiKrum, NormBound, TrimmedMean};
use serde::{Deserialize, Serialize};

/// Which updates an aggregation rule included in the new global model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Selection {
    /// Indices (into the submitted update list) of updates that were
    /// selected and averaged. DPR (paper Eq. 5) is computable.
    Chosen(Vec<usize>),
    /// The rule combined statistics of every update per coordinate (median,
    /// trimmed mean); no per-update selection exists and DPR is "NA".
    PerCoordinate,
}

impl Selection {
    /// Whether a per-update selection is available (i.e. DPR is defined).
    pub fn supports_dpr(&self) -> bool {
        matches!(self, Selection::Chosen(_))
    }
}

/// The result of one aggregation round.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregation {
    /// The new global model (flat parameter vector).
    pub model: Vec<f32>,
    /// Which updates were included.
    pub selection: Selection,
    /// Indices of updates discarded up front for containing NaN/∞.
    pub rejected_non_finite: Vec<usize>,
}

/// A Byzantine-robust aggregation rule.
///
/// Implementations must be deterministic functions of their inputs: the
/// simulator relies on this for reproducible runs.
pub trait Defense: Send + Sync {
    /// Aggregates `updates` (flat parameter vectors, one per client) with
    /// per-client sample-count `weights` (used only by weighted rules;
    /// robust rules ignore them, as in the original papers).
    ///
    /// # Errors
    ///
    /// Returns [`AggError`] when no finite updates remain, lengths are
    /// inconsistent, or the rule's robustness precondition fails.
    fn aggregate(&self, updates: &[Vec<f32>], weights: &[f32]) -> Result<Aggregation, AggError>;

    /// Short rule name for reports, e.g. `"mKrum"`.
    fn name(&self) -> &'static str;

    /// Aggregates with an optional *reference model* (the current global
    /// model `w(t)`). Distance-based rules are shift-invariant and ignore
    /// it — the default delegates to [`Defense::aggregate`] — but
    /// similarity-based rules (FoolsGold) must measure update *deltas*
    /// `w_i − w(t)`, which are not shift-invariant.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Defense::aggregate`].
    fn aggregate_with_reference(
        &self,
        updates: &[Vec<f32>],
        weights: &[f32],
        _reference: Option<&[f32]>,
    ) -> Result<Aggregation, AggError> {
        self.aggregate(updates, weights)
    }
}

/// Serializable defense configuration — the experiment-grid axis of the
/// paper's evaluation. Build the actual rule with [`DefenseKind::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DefenseKind {
    /// Plain weighted averaging (no defense).
    FedAvg,
    /// Classic Krum selecting a single update; `f` is the tolerated number
    /// of Byzantine clients.
    Krum {
        /// Tolerated Byzantine count.
        f: usize,
    },
    /// Multi-Krum: select the `m = n − f − 2` lowest-score updates.
    MKrum {
        /// Tolerated Byzantine count.
        f: usize,
    },
    /// Per-coordinate trimmed mean dropping `trim` values at each extreme.
    TrMean {
        /// Values trimmed per side.
        trim: usize,
    },
    /// Per-coordinate median.
    Median,
    /// Bulyan with tolerated Byzantine count `f`.
    Bulyan {
        /// Tolerated Byzantine count.
        f: usize,
    },
    /// FoolsGold cosine-similarity Sybil defense (extension; the paper's
    /// evaluation excludes Sybil defenses).
    FoolsGold,
    /// Norm-bounded averaging (extension: the "stronger defense" direction
    /// of the paper's conclusion).
    NormBound {
        /// Maximum L2 norm of each update's delta from the global model.
        /// Serialized as milli-units (integer) to keep the kind `Eq`-able
        /// and hashable for result caching.
        max_norm_milli: u32,
    },
}

impl DefenseKind {
    /// The four defenses of the paper's evaluation plus the FedAvg baseline,
    /// parameterized for `n` submitted updates and a server-assumed
    /// Byzantine count `f` (the paper's setting: n = 10, f = 2).
    pub fn paper_grid(f: usize) -> Vec<DefenseKind> {
        vec![
            DefenseKind::MKrum { f },
            DefenseKind::TrMean { trim: f },
            DefenseKind::Bulyan { f },
            DefenseKind::Median,
        ]
    }

    /// Instantiates the rule.
    ///
    /// # Errors
    ///
    /// Returns [`AggError::InvalidParameter`] for degenerate parameters.
    pub fn build(&self) -> Result<Box<dyn Defense>, AggError> {
        Ok(match *self {
            DefenseKind::FedAvg => Box::new(FedAvg::new()),
            DefenseKind::Krum { f } => Box::new(Krum::new(f)),
            DefenseKind::MKrum { f } => Box::new(MultiKrum::with_default_m(f)),
            DefenseKind::TrMean { trim } => Box::new(TrimmedMean::new(trim)),
            DefenseKind::Median => Box::new(Median::new()),
            DefenseKind::Bulyan { f } => Box::new(Bulyan::new(f)),
            DefenseKind::FoolsGold => Box::new(FoolsGold::new()),
            DefenseKind::NormBound { max_norm_milli } => {
                if max_norm_milli == 0 {
                    return Err(AggError::InvalidParameter(
                        "norm bound must be positive".into(),
                    ));
                }
                Box::new(NormBound::new(max_norm_milli as f32 / 1000.0))
            }
        })
    }

    /// Stable display name matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            DefenseKind::FedAvg => "FedAvg",
            DefenseKind::Krum { .. } => "Krum",
            DefenseKind::MKrum { .. } => "mKrum",
            DefenseKind::TrMean { .. } => "TRmean",
            DefenseKind::Median => "Median",
            DefenseKind::Bulyan { .. } => "Bulyan",
            DefenseKind::FoolsGold => "FoolsGold",
            DefenseKind::NormBound { .. } => "NormBound",
        }
    }
}

/// Filters out non-finite updates, returning `(kept_indices, kept_refs)`.
///
/// # Errors
///
/// Returns [`AggError::NoUpdates`] when nothing remains and
/// [`AggError::LengthMismatch`] on ragged input.
pub(crate) fn finite_updates(updates: &[Vec<f32>]) -> Result<(Vec<usize>, Vec<&[f32]>), AggError> {
    if updates.is_empty() {
        return Err(AggError::NoUpdates);
    }
    let d = updates[0].len();
    for u in updates {
        if u.len() != d {
            return Err(AggError::LengthMismatch {
                expected: d,
                actual: u.len(),
            });
        }
    }
    let mut idx = Vec::new();
    let mut refs = Vec::new();
    for (i, u) in updates.iter().enumerate() {
        if u.iter().all(|v| v.is_finite()) {
            idx.push(i);
            refs.push(u.as_slice());
        }
    }
    if refs.is_empty() {
        return Err(AggError::NoUpdates);
    }
    Ok((idx, refs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_builds_and_labels() {
        for kind in [
            DefenseKind::FedAvg,
            DefenseKind::Krum { f: 1 },
            DefenseKind::MKrum { f: 2 },
            DefenseKind::TrMean { trim: 2 },
            DefenseKind::Median,
            DefenseKind::Bulyan { f: 2 },
            DefenseKind::FoolsGold,
            DefenseKind::NormBound {
                max_norm_milli: 500,
            },
        ] {
            let d = kind.build().unwrap();
            assert!(!d.name().is_empty());
            assert!(!kind.label().is_empty());
        }
    }

    #[test]
    fn paper_grid_is_the_four_defenses() {
        let grid = DefenseKind::paper_grid(2);
        let labels: Vec<&str> = grid.iter().map(|k| k.label()).collect();
        assert_eq!(labels, vec!["mKrum", "TRmean", "Bulyan", "Median"]);
    }

    #[test]
    fn normbound_kind_rejects_zero() {
        assert!(DefenseKind::NormBound { max_norm_milli: 0 }
            .build()
            .is_err());
    }

    #[test]
    fn kind_roundtrips_through_serde() {
        let kind = DefenseKind::Bulyan { f: 2 };
        let s = serde_json::to_string(&kind).unwrap();
        let back: DefenseKind = serde_json::from_str(&s).unwrap();
        assert_eq!(kind, back);
    }

    #[test]
    fn finite_filter_drops_nan_updates() {
        let ups = vec![vec![1.0, 2.0], vec![f32::NAN, 0.0], vec![3.0, 4.0]];
        let (idx, refs) = finite_updates(&ups).unwrap();
        assert_eq!(idx, vec![0, 2]);
        assert_eq!(refs.len(), 2);
        let all_bad = vec![vec![f32::INFINITY]];
        assert_eq!(finite_updates(&all_bad), Err(AggError::NoUpdates));
        let ragged = vec![vec![1.0], vec![1.0, 2.0]];
        assert!(matches!(
            finite_updates(&ragged),
            Err(AggError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn selection_dpr_support() {
        assert!(Selection::Chosen(vec![0]).supports_dpr());
        assert!(!Selection::PerCoordinate.supports_dpr());
    }
}
