//! FLTrust-style aggregation (Cao et al., NDSS 2021) — an extension in the
//! "stronger defenses" direction of the paper's conclusion.
//!
//! The server owns a small clean *root dataset* and computes its own
//! reference update every round; client updates are (a) trust-scored by
//! the ReLU-clipped cosine similarity of their *delta* to the server's
//! delta and (b) magnitude-normalized to the server delta's norm, then
//! averaged with trust weights.
//!
//! The aggregation itself is pure vector math and lives here; *producing*
//! the server update requires training and is driven by the simulator
//! (`fabflip-fl`), which owns models and data.

use crate::types::finite_updates;
use crate::{AggError, Aggregation, Selection};
use fabflip_tensor::vecops;

/// Minimum trust score for an update to count as "selected" for DPR.
pub const FLTRUST_SELECT_CUTOFF: f32 = 1e-3;

/// FLTrust aggregation given the current global model and the server's own
/// root-data update (both full weight vectors, like client updates).
///
/// Returns the new global model; [`Selection::Chosen`] lists the updates
/// with positive trust.
///
/// # Errors
///
/// Returns [`AggError`] when updates are empty/ragged or the global /
/// server vectors have mismatched lengths.
pub fn fltrust_aggregate(
    updates: &[Vec<f32>],
    global: &[f32],
    server_update: &[f32],
) -> Result<Aggregation, AggError> {
    let v = finite_updates(updates)?;
    let (idx, refs) = (v.idx, v.refs);
    let d = refs[0].len();
    if global.len() != d {
        return Err(AggError::LengthMismatch {
            expected: d,
            actual: global.len(),
        });
    }
    if server_update.len() != d {
        return Err(AggError::LengthMismatch {
            expected: d,
            actual: server_update.len(),
        });
    }
    let g0 = vecops::sub(server_update, global);
    let g0_norm = vecops::l2_norm(&g0);
    if g0_norm < 1e-12 {
        // Degenerate server step: keep the global model unchanged rather
        // than dividing by zero.
        return Ok(Aggregation {
            model: global.to_vec(),
            selection: Selection::Chosen(Vec::new()),
            rejected_non_finite: v.rejected_non_finite,
            rejected_malformed: v.rejected_malformed,
        });
    }

    let mut trust = Vec::with_capacity(refs.len());
    let mut normalized: Vec<Vec<f32>> = Vec::with_capacity(refs.len());
    for r in &refs {
        let gi = vecops::sub(r, global);
        let gi_norm = vecops::l2_norm(&gi);
        let cos = if gi_norm < 1e-12 {
            0.0
        } else {
            (vecops::dot(&gi, &g0) / (gi_norm * g0_norm)).clamp(-1.0, 1.0)
        };
        trust.push(cos.max(0.0)); // ReLU clip
        let scale = if gi_norm < 1e-12 {
            0.0
        } else {
            g0_norm / gi_norm
        };
        normalized.push(vecops::scale(&gi, scale));
    }
    let total: f32 = trust.iter().sum();
    let mut model = global.to_vec();
    if total > 0.0 {
        for (gi, &ts) in normalized.iter().zip(&trust) {
            vecops::axpy_in_place(&mut model, ts / total, gi);
        }
    } else {
        // No client trusted this round: take the server's own step, the
        // reference behaviour that keeps training alive under full attack.
        vecops::axpy_in_place(&mut model, 1.0, &g0);
    }
    let chosen: Vec<usize> = idx
        .iter()
        .zip(&trust)
        .filter(|(_, &ts)| ts >= FLTRUST_SELECT_CUTOFF)
        .map(|(&i, _)| i)
        .collect();
    Ok(Aggregation {
        model,
        selection: Selection::Chosen(chosen),
        rejected_non_finite: v.rejected_non_finite,
        rejected_malformed: v.rejected_malformed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trusts_aligned_updates_and_zeroes_opposed_ones() {
        let global = vec![0.0f32; 3];
        let server = vec![1.0f32, 0.0, 0.0]; // delta = +x
        let updates = vec![
            vec![2.0f32, 0.0, 0.0],  // aligned (cos 1)
            vec![-1.0f32, 0.0, 0.0], // opposed (cos -1 → trust 0)
        ];
        let agg = fltrust_aggregate(&updates, &global, &server).unwrap();
        match agg.selection {
            Selection::Chosen(ref c) => assert_eq!(c, &vec![0]),
            _ => panic!(),
        }
        // Aggregate = trust-weighted, magnitude-normalized: exactly g0.
        assert!((agg.model[0] - 1.0).abs() < 1e-5, "{:?}", agg.model);
        assert!(agg.model[1].abs() < 1e-6);
    }

    #[test]
    fn magnitude_normalization_caps_scaled_attacks() {
        // A boosted update in the right direction gains no extra weight.
        let global = vec![0.0f32; 2];
        let server = vec![1.0f32, 0.0];
        let updates = vec![vec![1000.0f32, 0.0]];
        let agg = fltrust_aggregate(&updates, &global, &server).unwrap();
        assert!((agg.model[0] - 1.0).abs() < 1e-4, "{:?}", agg.model);
    }

    #[test]
    fn all_untrusted_round_takes_the_server_step() {
        let global = vec![1.0f32, 1.0];
        let server = vec![1.5f32, 1.0]; // delta +0.5 on x
        let updates = vec![vec![0.0f32, 1.0], vec![0.5, 1.0]]; // all opposed
        let agg = fltrust_aggregate(&updates, &global, &server).unwrap();
        assert!((agg.model[0] - 1.5).abs() < 1e-6);
        match agg.selection {
            Selection::Chosen(ref c) => assert!(c.is_empty()),
            _ => panic!(),
        }
    }

    #[test]
    fn degenerate_server_step_is_a_noop() {
        let global = vec![1.0f32, 2.0];
        let agg = fltrust_aggregate(&[vec![5.0, 5.0]], &global, &global).unwrap();
        assert_eq!(agg.model, global);
    }

    #[test]
    fn length_mismatches_are_rejected() {
        let updates = vec![vec![1.0f32, 2.0]];
        assert!(fltrust_aggregate(&updates, &[0.0], &[0.0, 0.0]).is_err());
        assert!(fltrust_aggregate(&updates, &[0.0, 0.0], &[0.0]).is_err());
    }

    #[test]
    fn nan_updates_are_filtered_first() {
        let global = vec![0.0f32; 2];
        let server = vec![1.0f32, 0.0];
        let updates = vec![vec![f32::NAN, 0.0], vec![2.0, 0.0]];
        let agg = fltrust_aggregate(&updates, &global, &server).unwrap();
        assert_eq!(agg.rejected_non_finite, vec![0]);
        assert!(agg.model.iter().all(|v| v.is_finite()));
    }
}
