//! Property-based tests of the aggregation rules.

use crate::{Bulyan, Defense, FedAvg, Krum, Median, MultiKrum, Selection, TrimmedMean};
use proptest::prelude::*;

fn updates_strategy(n: std::ops::Range<usize>, d: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    proptest::collection::vec(proptest::collection::vec(-5.0f32..5.0, d), n)
}

/// Applies a permutation to a list of updates.
fn permute<T: Clone>(items: &[T], rotate: usize) -> Vec<T> {
    let mut v = items.to_vec();
    v.rotate_left(rotate % items.len().max(1));
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fedavg_is_linear_and_bounded(ups in updates_strategy(2..8, 5)) {
        let w = vec![1.0; ups.len()];
        let agg = FedAvg::new().aggregate(&ups, &w).unwrap();
        for coord in 0..5 {
            let lo = ups.iter().map(|u| u[coord]).fold(f32::INFINITY, f32::min);
            let hi = ups.iter().map(|u| u[coord]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(agg.model[coord] >= lo - 1e-4 && agg.model[coord] <= hi + 1e-4);
        }
    }

    #[test]
    fn fedavg_of_identical_updates_is_identity(u in proptest::collection::vec(-5.0f32..5.0, 6), n in 1usize..6) {
        let ups: Vec<Vec<f32>> = (0..n).map(|_| u.clone()).collect();
        let agg = FedAvg::new().aggregate(&ups, &vec![1.0; n]).unwrap();
        for (a, b) in agg.model.iter().zip(&u) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn median_and_trmean_bounded_by_extremes(ups in updates_strategy(5..9, 4)) {
        let w = vec![1.0; ups.len()];
        for defense in [&Median::new() as &dyn Defense, &TrimmedMean::new(1)] {
            let agg = defense.aggregate(&ups, &w).unwrap();
            prop_assert_eq!(&agg.selection, &Selection::PerCoordinate);
            for coord in 0..4 {
                let lo = ups.iter().map(|u| u[coord]).fold(f32::INFINITY, f32::min);
                let hi = ups.iter().map(|u| u[coord]).fold(f32::NEG_INFINITY, f32::max);
                prop_assert!(agg.model[coord] >= lo - 1e-5 && agg.model[coord] <= hi + 1e-5);
            }
        }
    }

    #[test]
    fn statistic_rules_are_permutation_invariant(ups in updates_strategy(5..9, 3), rot in 1usize..5) {
        let w = vec![1.0; ups.len()];
        let shuffled = permute(&ups, rot);
        for defense in [&Median::new() as &dyn Defense, &TrimmedMean::new(1)] {
            let a = defense.aggregate(&ups, &w).unwrap();
            let b = defense.aggregate(&shuffled, &w).unwrap();
            for (x, y) in a.model.iter().zip(&b.model) {
                prop_assert!((x - y).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn krum_selects_a_submitted_update(ups in updates_strategy(5..9, 3)) {
        let w = vec![1.0; ups.len()];
        let agg = Krum::new(1).aggregate(&ups, &w).unwrap();
        match agg.selection {
            Selection::Chosen(ref c) => {
                prop_assert_eq!(c.len(), 1);
                // Output is exactly the chosen update.
                prop_assert_eq!(&agg.model, &ups[c[0]]);
            }
            _ => prop_assert!(false, "krum must choose"),
        }
    }

    #[test]
    fn mkrum_selection_tracks_permutation(ups in updates_strategy(6..9, 3), rot in 1usize..5) {
        // The *set of selected updates* (as vectors) must be permutation
        // invariant, even though indices change.
        let w = vec![1.0; ups.len()];
        let rule = MultiKrum::new(1, 3).unwrap();
        let a = rule.aggregate(&ups, &w).unwrap();
        let shuffled = permute(&ups, rot);
        let b = rule.aggregate(&shuffled, &w).unwrap();
        let set_of = |agg: &crate::Aggregation, src: &[Vec<f32>]| -> Vec<Vec<u32>> {
            match &agg.selection {
                Selection::Chosen(c) => {
                    let mut v: Vec<Vec<u32>> = c
                        .iter()
                        .map(|&i| src[i].iter().map(|f| f.to_bits()).collect())
                        .collect();
                    v.sort();
                    v
                }
                _ => panic!(),
            }
        };
        prop_assert_eq!(set_of(&a, &ups), set_of(&b, &shuffled));
    }

    #[test]
    fn bulyan_bounded_by_extremes(ups in updates_strategy(9..12, 4)) {
        let w = vec![1.0; ups.len()];
        let agg = Bulyan::new(2).aggregate(&ups, &w).unwrap();
        for coord in 0..4 {
            let lo = ups.iter().map(|u| u[coord]).fold(f32::INFINITY, f32::min);
            let hi = ups.iter().map(|u| u[coord]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(agg.model[coord] >= lo - 1e-5 && agg.model[coord] <= hi + 1e-5);
        }
    }

    #[test]
    fn all_rules_survive_one_nan_update(mut ups in updates_strategy(10..12, 4)) {
        ups[0][2] = f32::NAN;
        let w = vec![1.0; ups.len()];
        let rules: Vec<Box<dyn Defense>> = vec![
            Box::new(FedAvg::new()),
            Box::new(Krum::new(2)),
            Box::new(MultiKrum::with_default_m(2)),
            Box::new(TrimmedMean::new(2)),
            Box::new(Median::new()),
            Box::new(Bulyan::new(2)),
        ];
        for rule in &rules {
            let agg = rule.aggregate(&ups, &w).unwrap();
            prop_assert!(agg.model.iter().all(|v| v.is_finite()), "{} emitted non-finite", rule.name());
            prop_assert_eq!(&agg.rejected_non_finite, &vec![0usize]);
        }
    }
}
