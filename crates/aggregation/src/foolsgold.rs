use crate::types::finite_updates;
use crate::{AggError, Aggregation, Defense, Selection};
use fabflip_tensor::scratch::{scratch_f32, Purpose};
use fabflip_tensor::vecops;
use std::collections::BTreeMap;

/// FoolsGold (Fung et al., 2020) — the *Sybil* defense class the paper's
/// threat model discusses (Sec. III-A): instead of rejecting outliers, it
/// down-weights groups of updates that are suspiciously *similar* (one
/// adversary controlling many clients tends to submit near-identical
/// updates — exactly what the ZKA adversary does).
///
/// This is the memoryless per-round variant: cosine similarities are
/// computed between the round's update **deltas** `w_i − w(t)` (the
/// stateful original accumulates per-client histories; one-round deltas
/// already carry the Sybil signal because every malicious client submits
/// the same crafted update). Cosine similarity is not shift-invariant, so
/// the rule needs the global model as a reference — use
/// [`Defense::aggregate_with_reference`]; plain
/// [`Defense::aggregate`] treats the inputs as already-centred deltas.
///
/// Algorithm per round: pairwise cosine similarity → "pardoning" rescale →
/// weight `w_i = 1 − max_j cs_ij` → normalize → logit squash. Aggregation
/// is the weighted mean; updates with weight below [`FoolsGold::CUTOFF`]
/// count as rejected for DPR purposes.
///
/// The paper deliberately *excludes* Sybil defenses from its evaluation,
/// citing that small perturbation noise circumvents them; this
/// implementation (plus the simulator's `sybil_noise` knob) makes that
/// claim testable — see `examples/foolsgold_sybil.rs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FoolsGold;

impl FoolsGold {
    /// Creates the rule.
    pub fn new() -> FoolsGold {
        FoolsGold
    }

    /// Minimum post-squash weight for an update to count as "selected".
    pub const CUTOFF: f32 = 0.1;

    /// The per-update aggregation weights (after pardoning and the logit
    /// squash) for a set of update *deltas*, exposed for inspection.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FoolsGold::aggregate`].
    pub fn weights(&self, deltas: &[Vec<f32>]) -> Result<Vec<f32>, AggError> {
        let v = finite_updates(deltas)?;
        Ok(foolsgold_weights(&v.refs, None))
    }
}

/// Tile edge for the blocked similarity passes: at most `FG_TILE²`
/// similarity entries are resident at once (DESIGN.md §4e).
const FG_TILE: usize = 128;

/// FoolsGold weights, evaluated in `FG_TILE × FG_TILE` tiles of the
/// (never materialized) pairwise cosine matrix. When `reference` is set,
/// similarities are taken between the deltas `w_i − w(t)` without
/// materializing those either ([`vecops::dot_delta`] /
/// [`vecops::l2_norm_delta`]), so resident memory is O(n + B²) on top of
/// the inputs.
///
/// Bitwise identical to the dense formulation (pinned by
/// `tiled_weights_match_dense_bitwise`): cosine entries are pure
/// per-pair functions (`dot(a,b) == dot(b,a)` exactly — IEEE
/// multiplication commutes and the sum order is shared), and both row
/// folds visit `j` ascending exactly as the dense loops did, so tiling
/// only changes *when* entries are computed, never their values or the
/// fold order.
pub fn foolsgold_weights(refs: &[&[f32]], reference: Option<&[f32]>) -> Vec<f32> {
    let n = refs.len();
    if n == 1 {
        return vec![1.0];
    }
    let d = refs[0].len();
    // Delta norms once per update; each tile entry then costs one dot.
    // Norm checks happen *before* the dot (as in the historical scalar
    // `cosine`), so zero-norm or length-0 rows never reach `dot`.
    let norms: Vec<f32> = refs
        .iter()
        .map(|u| match reference {
            Some(r) => vecops::l2_norm_delta(u, r),
            None => vecops::l2_norm(u),
        })
        .collect();
    let entry = |i: usize, j: usize| -> f32 {
        let (na, nb) = (norms[i], norms[j]);
        if na < 1e-12 || nb < 1e-12 {
            return 0.0;
        }
        let dp = match reference {
            Some(r) => vecops::dot_delta(refs[i], refs[j], r),
            None => vecops::dot(refs[i], refs[j]),
        };
        (dp / (na * nb)).clamp(-1.0, 1.0)
    };
    let b = FG_TILE.min(n);
    let mut tile = scratch_f32(Purpose::DistTile, b * b);

    // Pass 1: per-row maxima of the similarity matrix. Column tiles are
    // swept in ascending j, so each row's `f32::max` fold runs in exactly
    // the dense order.
    let mut maxes = vec![f32::NEG_INFINITY; n];
    let mut row_lo = 0;
    while row_lo < n {
        let rows = b.min(n - row_lo);
        let mut col_lo = 0;
        while col_lo < n {
            let cols = b.min(n - col_lo);
            let t = &mut tile[..rows * cols];
            vecops::pairwise_tile_into(row_lo, col_lo, cols, d, t, entry);
            for (r, row) in t.chunks(cols).enumerate() {
                let i = row_lo + r;
                let m = &mut maxes[i];
                for (c, &cs) in row.iter().enumerate() {
                    if col_lo + c != i {
                        *m = m.max(cs);
                    }
                }
            }
            col_lo += cols;
        }
        row_lo += rows;
    }

    // Pass 2: pardoning — honest clients that merely resemble a popular
    // direction are rescaled relative to the more-suspicious party. The
    // tiles are recomputed (compute is the cheap axis here; memory is the
    // scarce one) and each row folds its pardoned maximum in ascending j.
    let mut max_cs = vec![f32::NEG_INFINITY; n];
    let mut row_lo = 0;
    while row_lo < n {
        let rows = b.min(n - row_lo);
        let mut col_lo = 0;
        while col_lo < n {
            let cols = b.min(n - col_lo);
            let t = &mut tile[..rows * cols];
            vecops::pairwise_tile_into(row_lo, col_lo, cols, d, t, entry);
            for (r, row) in t.chunks(cols).enumerate() {
                let i = row_lo + r;
                let m = &mut max_cs[i];
                for (c, &cs) in row.iter().enumerate() {
                    let j = col_lo + c;
                    if j == i {
                        continue;
                    }
                    let mut v = cs;
                    if maxes[j] > maxes[i] && maxes[i] > 0.0 {
                        v *= maxes[i] / maxes[j];
                    }
                    *m = m.max(v);
                }
            }
            col_lo += cols;
        }
        row_lo += rows;
    }

    let mut w: Vec<f32> = max_cs.iter().map(|&m| 1.0 - m).collect();
    // Normalize to [0, 1] by the maximum weight.
    // fabcheck::allow(unordered_float_reduction): running max, serial left-to-right over the weight slice
    let wmax = w.iter().fold(0.0f32, |a, &b| a.max(b));
    if wmax > 0.0 {
        for v in &mut w {
            *v = (*v / wmax).clamp(0.0, 1.0);
        }
    }
    // Logit squash, clipped into [0, 1] (as in the original).
    for v in &mut w {
        let x = v.clamp(1e-5, 1.0 - 1e-5);
        *v = ((x / (1.0 - x)).ln() * 0.5 + 0.5).clamp(0.0, 1.0);
    }
    w
}

/// The historical dense formulation, kept as the bitwise reference for
/// the tiled rewrite above.
#[cfg(test)]
fn foolsgold_weights_dense(refs: &[&[f32]]) -> Vec<f32> {
    fn cosine(a: &[f32], b: &[f32]) -> f32 {
        let na = vecops::l2_norm(a);
        let nb = vecops::l2_norm(b);
        if na < 1e-12 || nb < 1e-12 {
            return 0.0;
        }
        (vecops::dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
    }
    let n = refs.len();
    if n == 1 {
        return vec![1.0];
    }
    let mut cs = vec![vec![0.0f32; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let c = cosine(refs[i], refs[j]);
            cs[i][j] = c;
            cs[j][i] = c;
        }
    }
    let maxes: Vec<f32> = (0..n)
        .map(|i| {
            (0..n)
                .filter(|&j| j != i)
                .map(|j| cs[i][j])
                .fold(f32::NEG_INFINITY, f32::max)
        })
        .collect();
    let mut w = vec![0.0f32; n];
    for i in 0..n {
        let mut max_cs = f32::NEG_INFINITY;
        for j in 0..n {
            if i == j {
                continue;
            }
            let mut v = cs[i][j];
            if maxes[j] > maxes[i] && maxes[i] > 0.0 {
                v *= maxes[i] / maxes[j];
            }
            max_cs = max_cs.max(v);
        }
        w[i] = 1.0 - max_cs;
    }
    let wmax = w.iter().fold(0.0f32, |a, &b| a.max(b));
    if wmax > 0.0 {
        for v in &mut w {
            *v = (*v / wmax).clamp(0.0, 1.0);
        }
    }
    for v in &mut w {
        let x = v.clamp(1e-5, 1.0 - 1e-5);
        *v = ((x / (1.0 - x)).ln() * 0.5 + 0.5).clamp(0.0, 1.0);
    }
    w
}

/// Per-round deltas `w_i − w(t)` (or the raw inputs when no reference).
fn centered_deltas(refs: &[&[f32]], reference: Option<&[f32]>) -> Vec<Vec<f32>> {
    refs.iter()
        .map(|u| match reference {
            Some(r) => vecops::sub(u, r),
            None => u.to_vec(),
        })
        .collect()
}

/// Weighted-mean aggregation + selection bookkeeping shared by the
/// memoryless and stateful paths. `idx`/`refs` are the valid survivors,
/// `w` their FoolsGold weights; the rejection lists come straight from
/// the input validator.
fn weighted_aggregation(
    idx: &[usize],
    refs: &[&[f32]],
    w: &[f32],
    rejected_non_finite: Vec<usize>,
    rejected_malformed: Vec<usize>,
) -> Aggregation {
    let total: f32 = w.iter().sum();
    let d = refs[0].len();
    let mut model = vec![0.0f32; d];
    if total > 0.0 {
        for (r, &wi) in refs.iter().zip(w) {
            vecops::axpy_in_place(&mut model, wi / total, r);
        }
    } else {
        // Everything looked Sybil-like: an uninformative round; fall
        // back to the plain mean so the server still makes progress.
        model = vecops::mean(refs);
    }
    let chosen: Vec<usize> = idx
        .iter()
        .zip(w)
        .filter(|(_, &wi)| wi >= FoolsGold::CUTOFF)
        .map(|(&i, _)| i)
        .collect();
    Aggregation {
        model,
        selection: Selection::Chosen(chosen),
        rejected_non_finite,
        rejected_malformed,
    }
}

impl FoolsGold {
    fn aggregate_inner(
        &self,
        updates: &[Vec<f32>],
        reference: Option<&[f32]>,
    ) -> Result<Aggregation, AggError> {
        let v = finite_updates(updates)?;
        if let Some(r) = reference {
            if r.len() != v.refs[0].len() {
                return Err(AggError::LengthMismatch {
                    expected: v.refs[0].len(),
                    actual: r.len(),
                });
            }
        }
        // Similarities on deltas w_i − w(t) (or raw inputs when no ref),
        // evaluated tile-by-tile without materializing the deltas.
        let w = foolsgold_weights(&v.refs, reference);
        Ok(weighted_aggregation(
            &v.idx,
            &v.refs,
            &w,
            v.rejected_non_finite,
            v.rejected_malformed,
        ))
    }

    /// Stateful aggregation — the original FoolsGold formulation, with
    /// bounded memory: folds this round's deltas into `history` and
    /// weights each update by the similarity of the clients' *decayed
    /// accumulated* histories, so Sybils whose identical directions only
    /// emerge across rounds are still caught. `clients[i]` is the stable
    /// client id behind `updates[i]`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Defense::aggregate_with_reference`], plus a
    /// length mismatch between `clients` and `updates`.
    pub fn aggregate_with_history(
        &self,
        history: &mut FoolsGoldHistory,
        clients: &[usize],
        updates: &[Vec<f32>],
        reference: Option<&[f32]>,
    ) -> Result<Aggregation, AggError> {
        if clients.len() != updates.len() {
            return Err(AggError::LengthMismatch {
                expected: updates.len(),
                actual: clients.len(),
            });
        }
        let v = finite_updates(updates)?;
        if let Some(r) = reference {
            if r.len() != v.refs[0].len() {
                return Err(AggError::LengthMismatch {
                    expected: v.refs[0].len(),
                    actual: r.len(),
                });
            }
        }
        let deltas = centered_deltas(&v.refs, reference);
        let kept_clients: Vec<usize> = v.idx.iter().map(|&i| clients[i]).collect();
        history.observe_round(&kept_clients, &deltas);
        let w = history.weights(&kept_clients);
        Ok(weighted_aggregation(
            &v.idx,
            &v.refs,
            &w,
            v.rejected_non_finite,
            v.rejected_malformed,
        ))
    }
}

/// Bounded per-client history for the stateful FoolsGold path.
///
/// The original FoolsGold measures similarity between each client's
/// *accumulated* update history `H_i = Σ_t Δ_i(t)`; stored naively that
/// state grows with both the round count and the client population. This
/// implementation keeps exactly one exponentially-decayed aggregate per
/// client (`H_i ← decay·H_i + Δ_i`) and at most `max_clients` aggregates
/// (least-recently-seen eviction, smallest client id on ties), so memory
/// is `O(max_clients · d)` no matter how long a grid runs — the regression
/// test below pins that bound.
#[derive(Debug, Clone)]
pub struct FoolsGoldHistory {
    decay: f32,
    max_clients: usize,
    round: u64,
    hist: BTreeMap<usize, ClientHistory>,
}

#[derive(Debug, Clone)]
struct ClientHistory {
    aggregate: Vec<f32>,
    last_seen: u64,
}

impl FoolsGoldHistory {
    /// Decay used by [`FoolsGoldHistory::with_capacity`]: old rounds fade
    /// with a ~10-round half-life while the Sybil direction, re-submitted
    /// every round, keeps dominating the aggregate.
    pub const DEFAULT_DECAY: f32 = 0.9;

    /// Creates a history with the given per-round `decay` in `[0, 1]` and
    /// a hard cap on tracked clients.
    ///
    /// # Panics
    ///
    /// Panics when `decay` is outside `[0, 1]` or `max_clients` is zero.
    pub fn new(decay: f32, max_clients: usize) -> FoolsGoldHistory {
        assert!((0.0..=1.0).contains(&decay), "decay must be in [0, 1]");
        assert!(max_clients > 0, "max_clients must be positive");
        FoolsGoldHistory {
            decay,
            max_clients,
            round: 0,
            hist: BTreeMap::new(),
        }
    }

    /// [`FoolsGoldHistory::new`] with [`FoolsGoldHistory::DEFAULT_DECAY`].
    pub fn with_capacity(max_clients: usize) -> FoolsGoldHistory {
        FoolsGoldHistory::new(FoolsGoldHistory::DEFAULT_DECAY, max_clients)
    }

    /// Folds one round of per-client deltas into the decayed aggregates,
    /// then evicts least-recently-seen clients beyond the cap
    /// (deterministically: smallest client id breaks `last_seen` ties,
    /// because `BTreeMap` iterates ids in ascending order).
    pub fn observe_round(&mut self, clients: &[usize], deltas: &[Vec<f32>]) {
        debug_assert_eq!(clients.len(), deltas.len());
        self.round += 1;
        let (decay, round) = (self.decay, self.round);
        for (&c, d) in clients.iter().zip(deltas) {
            let e = self.hist.entry(c).or_insert_with(|| ClientHistory {
                aggregate: vec![0.0; d.len()],
                last_seen: round,
            });
            if e.aggregate.len() != d.len() {
                // Model dimensionality changed: restart this client.
                e.aggregate = vec![0.0; d.len()];
            }
            for (h, &x) in e.aggregate.iter_mut().zip(d) {
                *h = decay * *h + x;
            }
            e.last_seen = round;
        }
        while self.hist.len() > self.max_clients {
            let evict = self
                .hist
                .iter()
                .min_by_key(|(_, ch)| ch.last_seen)
                .map(|(&id, _)| id)
                .expect("history non-empty while over capacity");
            self.hist.remove(&evict);
        }
    }

    /// FoolsGold weights for `clients`, computed on their decayed history
    /// aggregates. A client without history (never seen, or evicted before
    /// this round re-inserted it) counts as fresh: its zero-norm aggregate
    /// has zero cosine to everyone.
    pub fn weights(&self, clients: &[usize]) -> Vec<f32> {
        static EMPTY: [f32; 0] = [];
        let refs: Vec<&[f32]> = clients
            .iter()
            .map(|c| {
                self.hist
                    .get(c)
                    .map_or(&EMPTY[..], |h| h.aggregate.as_slice())
            })
            .collect();
        foolsgold_weights(&refs, None)
    }

    /// Number of clients currently tracked (≤ `max_clients`).
    pub fn tracked_clients(&self) -> usize {
        self.hist.len()
    }

    /// Total floats held across all aggregates — the memory figure the
    /// bounded-growth regression test asserts stays ≤ `max_clients · d`.
    pub fn memory_floats(&self) -> usize {
        self.hist.values().map(|h| h.aggregate.len()).sum()
    }
}

impl Defense for FoolsGold {
    fn aggregate(&self, updates: &[Vec<f32>], _weights: &[f32]) -> Result<Aggregation, AggError> {
        self.aggregate_inner(updates, None)
    }

    fn aggregate_with_reference(
        &self,
        updates: &[Vec<f32>],
        _weights: &[f32],
        reference: Option<&[f32]>,
    ) -> Result<Aggregation, AggError> {
        self.aggregate_inner(updates, reference)
    }

    fn name(&self) -> &'static str {
        "FoolsGold"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pseudo-random, low-mutual-cosine "honest" deltas.
    fn diverse_deltas(n: usize, d: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| {
                (0..d)
                    .map(|j| (((i * d + j) as f32) * 2.399 + 0.7).sin())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn identical_sybils_get_zero_weight() {
        let mut ups = diverse_deltas(6, 16);
        let sybil: Vec<f32> = (0..16).map(|j| (j as f32 * 1.1).cos()).collect();
        ups.push(sybil.clone());
        ups.push(sybil.clone());
        ups.push(sybil);
        let fg = FoolsGold::new();
        let w = fg.weights(&ups).unwrap();
        for i in 6..9 {
            assert!(w[i] < 0.05, "sybil {i} kept weight {} ({w:?})", w[i]);
        }
        let honest_mean: f32 = w[..6].iter().sum::<f32>() / 6.0;
        assert!(honest_mean > 0.5, "honest clients down-weighted: {w:?}");
        // DPR view: sybils excluded from the selection.
        let agg = fg.aggregate(&ups, &[1.0; 9]).unwrap();
        match agg.selection {
            Selection::Chosen(ref c) => {
                assert!(
                    !c.contains(&6) && !c.contains(&7) && !c.contains(&8),
                    "{c:?}"
                );
            }
            _ => panic!(),
        }
    }

    #[test]
    fn perturbed_sybils_regain_weight() {
        // The paper's Sec. III-A claim: small noise circumvents the Sybil
        // defense. Perturb each copy; their pairwise cosine drops and the
        // weights recover.
        let mut ups = diverse_deltas(6, 16);
        let base: Vec<f32> = (0..16).map(|j| (j as f32 * 1.1).cos()).collect();
        for k in 0..3usize {
            let noisy: Vec<f32> = base
                .iter()
                .enumerate()
                .map(|(j, v)| v + 1.2 * ((k * 31 + j * 7) as f32 * 2.1).sin())
                .collect();
            ups.push(noisy);
        }
        let w = FoolsGold::new().weights(&ups).unwrap();
        let sybil_mean = (w[6] + w[7] + w[8]) / 3.0;
        assert!(sybil_mean > 0.4, "perturbed sybils still flagged: {w:?}");
    }

    #[test]
    fn reference_centering_exposes_sybils_hidden_by_a_common_offset() {
        // Absolute weight vectors all sit near the global model, so raw
        // cosine similarity is ~1 for everyone; only the delta view
        // separates honest diversity from Sybil identity.
        let global: Vec<f32> = (0..16).map(|j| 10.0 + (j as f32 * 0.3).sin()).collect();
        let honest_deltas = diverse_deltas(6, 16);
        let sybil_delta: Vec<f32> = (0..16).map(|j| (j as f32 * 1.1).cos() * 0.1).collect();
        let mut ups: Vec<Vec<f32>> = honest_deltas
            .iter()
            .map(|d| vecops::add(&vecops::scale(d, 0.1), &global))
            .collect();
        for _ in 0..3 {
            ups.push(vecops::add(&sybil_delta, &global));
        }
        let fg = FoolsGold::new();
        let agg = fg
            .aggregate_with_reference(&ups, &[1.0; 9], Some(&global))
            .unwrap();
        match agg.selection {
            Selection::Chosen(ref c) => {
                assert!(
                    !c.contains(&6) && !c.contains(&7) && !c.contains(&8),
                    "{c:?}"
                );
                assert!(c.len() >= 4, "honest majority should be kept: {c:?}");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn diverse_updates_are_all_kept() {
        let ups = diverse_deltas(8, 16);
        let agg = FoolsGold::new().aggregate(&ups, &[1.0; 8]).unwrap();
        match agg.selection {
            Selection::Chosen(ref c) => {
                assert!(c.len() >= 6, "too many honest clients dropped: {c:?}");
            }
            _ => panic!(),
        }
        assert!(agg.model.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn tiled_weights_match_dense_bitwise() {
        // n > FG_TILE so the tile sweep crosses block boundaries in both
        // passes; include a Sybil pair and a zero-norm row so every branch
        // of the entry kernel (skip, pardon, clamp) is exercised.
        let n = FG_TILE + 21;
        let mut ups: Vec<Vec<f32>> = (0..n - 3)
            .map(|u| {
                (0..9)
                    .map(|i| ((u * 9 + i) as f32 * 2.399 + 0.7).sin())
                    .collect()
            })
            .collect();
        let sybil: Vec<f32> = (0..9).map(|j| (j as f32 * 1.1).cos()).collect();
        ups.push(sybil.clone());
        ups.push(sybil);
        ups.push(vec![0.0; 9]);
        let refs: Vec<&[f32]> = ups.iter().map(|u| u.as_slice()).collect();
        let tiled = foolsgold_weights(&refs, None);
        let dense = foolsgold_weights_dense(&refs);
        for (t, d) in tiled.iter().zip(&dense) {
            assert_eq!(t.to_bits(), d.to_bits());
        }
        // The referenced path equals dense-on-materialized-deltas bitwise.
        let global: Vec<f32> = (0..9).map(|j| 10.0 + (j as f32 * 0.3).sin()).collect();
        let tiled_ref = foolsgold_weights(&refs, Some(&global));
        let deltas = centered_deltas(&refs, Some(&global));
        let delta_refs: Vec<&[f32]> = deltas.iter().map(|d| d.as_slice()).collect();
        let dense_ref = foolsgold_weights_dense(&delta_refs);
        for (t, d) in tiled_ref.iter().zip(&dense_ref) {
            assert_eq!(t.to_bits(), d.to_bits());
        }
    }

    #[test]
    fn single_update_passes_through() {
        let ups = vec![vec![1.0f32, 2.0]];
        let agg = FoolsGold::new().aggregate(&ups, &[1.0]).unwrap();
        assert_eq!(agg.model, vec![1.0, 2.0]);
    }

    #[test]
    fn all_identical_round_falls_back_to_mean() {
        let ups = vec![vec![1.0f32, 2.0]; 4];
        let agg = FoolsGold::new().aggregate(&ups, &[1.0; 4]).unwrap();
        assert_eq!(agg.model, vec![1.0, 2.0]);
    }

    #[test]
    fn survives_nan_update() {
        let mut ups = diverse_deltas(5, 16);
        ups.push(vec![f32::NAN; 16]);
        let agg = FoolsGold::new().aggregate(&ups, &[1.0; 6]).unwrap();
        assert_eq!(agg.rejected_non_finite, vec![5]);
        assert!(agg.model.iter().all(|v| v.is_finite()));
    }

    /// Regression test for the ROADMAP open item: history memory must stay
    /// bounded by `max_clients · d` no matter how many rounds run or how
    /// many distinct clients rotate through.
    #[test]
    fn history_memory_stays_bounded_over_many_rounds() {
        let (cap, d) = (16usize, 32usize);
        let mut h = FoolsGoldHistory::new(0.9, cap);
        for round in 0..500usize {
            // 8 distinct clients per round drawn from a rotating pool of 64.
            let clients: Vec<usize> = (0..8).map(|i| (round * 5 + i * 11) % 64).collect();
            let deltas: Vec<Vec<f32>> = clients
                .iter()
                .map(|c| (0..d).map(|j| ((c * d + j) as f32 * 0.37).sin()).collect())
                .collect();
            h.observe_round(&clients, &deltas);
            assert!(
                h.tracked_clients() <= cap,
                "round {round}: {}",
                h.tracked_clients()
            );
            assert!(
                h.memory_floats() <= cap * d,
                "round {round}: {}",
                h.memory_floats()
            );
        }
        // Decay keeps the aggregates finite (geometric series bound).
        let w = h.weights(&[(499 * 5) % 64]);
        assert!(w.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn history_eviction_is_deterministic_lru() {
        let mut h = FoolsGoldHistory::new(0.5, 2);
        let d1 = vec![vec![1.0f32, 0.0]];
        h.observe_round(&[10], &d1);
        h.observe_round(&[20], &d1);
        // Inserting a third client evicts the least recently seen (10).
        h.observe_round(&[30], &d1);
        assert_eq!(h.tracked_clients(), 2);
        assert_eq!(h.weights(&[10]), vec![1.0], "evicted client reads as fresh");
        // Same-round tie: smallest id goes first.
        let mut h2 = FoolsGoldHistory::new(0.5, 2);
        h2.observe_round(&[7, 3, 5], &[d1[0].clone(), d1[0].clone(), d1[0].clone()]);
        assert_eq!(h2.tracked_clients(), 2);
        let w = h2.weights(&[5, 7]);
        assert_eq!(w.len(), 2, "3 was evicted, 5 and 7 remain tracked");
    }

    /// The stateful path catches Sybils whose identical direction
    /// accumulates across rounds, and stays bounded while doing so.
    #[test]
    fn aggregate_with_history_flags_repeated_sybils() {
        let fg = FoolsGold::new();
        let mut h = FoolsGoldHistory::with_capacity(32);
        let sybil: Vec<f32> = (0..16).map(|j| (j as f32 * 1.1).cos()).collect();
        let mut last = None;
        for round in 0..5usize {
            // Honest deltas vary per round; Sybil clients 6..9 repeat the
            // same crafted direction every round.
            let mut ups: Vec<Vec<f32>> = (0..6)
                .map(|i| {
                    (0..16)
                        .map(|j| (((round * 96 + i * 16 + j) as f32) * 2.399 + 0.7).sin())
                        .collect()
                })
                .collect();
            for _ in 0..3 {
                ups.push(sybil.clone());
            }
            let clients: Vec<usize> = (0..9).collect();
            last = Some(
                fg.aggregate_with_history(&mut h, &clients, &ups, None)
                    .unwrap(),
            );
        }
        assert!(h.memory_floats() <= 32 * 16);
        match last.expect("ran rounds").selection {
            Selection::Chosen(ref c) => {
                assert!(
                    !c.contains(&6) && !c.contains(&7) && !c.contains(&8),
                    "sybils kept: {c:?}"
                );
                assert!(c.len() >= 4, "honest majority dropped: {c:?}");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn aggregate_with_history_rejects_mismatched_clients() {
        let fg = FoolsGold::new();
        let mut h = FoolsGoldHistory::with_capacity(4);
        let err = fg.aggregate_with_history(&mut h, &[1, 2], &[vec![1.0f32, 2.0]], None);
        assert!(matches!(err, Err(AggError::LengthMismatch { .. })));
    }
}
