use crate::types::finite_updates;
use crate::{AggError, Aggregation, Defense, Selection};
use fabflip_tensor::vecops;

/// Per-coordinate trimmed mean (Yin et al., 2018): drops the `trim` largest
/// and smallest values of every coordinate and averages the rest. The
/// paper's "TRmean" defense.
#[derive(Debug, Clone, Copy)]
pub struct TrimmedMean {
    trim: usize,
}

impl TrimmedMean {
    /// Creates the rule trimming `trim` values per side.
    pub fn new(trim: usize) -> TrimmedMean {
        TrimmedMean { trim }
    }
}

impl Defense for TrimmedMean {
    fn aggregate(&self, updates: &[Vec<f32>], _weights: &[f32]) -> Result<Aggregation, AggError> {
        let v = finite_updates(updates)?;
        let n = v.refs.len();
        if n <= 2 * self.trim {
            return Err(AggError::TooFewUpdates {
                rule: "trimmed-mean",
                needed: 2 * self.trim + 1,
                got: n,
            });
        }
        let model = vecops::trimmed_mean(&v.refs, self.trim);
        Ok(Aggregation {
            model,
            selection: Selection::PerCoordinate,
            rejected_non_finite: v.rejected_non_finite,
            rejected_malformed: v.rejected_malformed,
        })
    }

    fn name(&self) -> &'static str {
        "TRmean"
    }
}

/// Per-coordinate median (Yin et al., 2018) — the paper's "Median" defense,
/// the most aggressive statistic rule.
#[derive(Debug, Clone, Copy, Default)]
pub struct Median;

impl Median {
    /// Creates the rule.
    pub fn new() -> Median {
        Median
    }
}

impl Defense for Median {
    fn aggregate(&self, updates: &[Vec<f32>], _weights: &[f32]) -> Result<Aggregation, AggError> {
        let v = finite_updates(updates)?;
        let model = vecops::median(&v.refs);
        Ok(Aggregation {
            model,
            selection: Selection::PerCoordinate,
            rejected_non_finite: v.rejected_non_finite,
            rejected_malformed: v.rejected_malformed,
        })
    }

    fn name(&self) -> &'static str {
        "Median"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trimmed_mean_ignores_extreme_attacker() {
        let ups = vec![
            vec![1.0, -1.0],
            vec![1.2, -0.8],
            vec![0.8, -1.2],
            vec![1e6, -1e6], // attacker
        ];
        let agg = TrimmedMean::new(1).aggregate(&ups, &[1.0; 4]).unwrap();
        assert!(
            agg.model[0] < 2.0,
            "attacker leaked into coordinate 0: {:?}",
            agg.model
        );
        assert!(agg.model[1] > -2.0);
        assert_eq!(agg.selection, Selection::PerCoordinate);
    }

    #[test]
    fn trimmed_mean_needs_enough_updates() {
        let ups = vec![vec![1.0], vec![2.0]];
        assert!(matches!(
            TrimmedMean::new(1).aggregate(&ups, &[1.0; 2]),
            Err(AggError::TooFewUpdates { .. })
        ));
    }

    #[test]
    fn median_is_robust_to_minority() {
        let ups = vec![vec![1.0], vec![2.0], vec![3.0], vec![1e9], vec![-1e9]];
        let agg = Median::new().aggregate(&ups, &[1.0; 5]).unwrap();
        assert_eq!(agg.model, vec![2.0]);
    }

    #[test]
    fn median_with_nan_updates_filters_them() {
        let ups = vec![vec![1.0], vec![f32::NAN], vec![3.0]];
        let agg = Median::new().aggregate(&ups, &[1.0; 3]).unwrap();
        assert_eq!(agg.model, vec![2.0]);
        assert_eq!(agg.rejected_non_finite, vec![1]);
    }
}
