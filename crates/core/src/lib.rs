//! # fabflip — Fabricated Flips / the Zero-Knowledge Attack (ZKA)
//!
//! The paper's contribution: untargeted poisoning of federated learning
//! **without data and without eavesdropping**. The adversary only ever sees
//! the global model `w(t)` that the server distributes anyway, fabricates
//! malicious synthetic images from it, assigns them one uniformly chosen
//! label `Ỹ` ("fabricated flips"), trains a local model on the fabricated
//! set with a distance-based stealth regularizer, and submits the result
//! through all malicious clients.
//!
//! Two variants (Sec. IV):
//!
//! * [`ZkaR`] — **R**everse engineering: map a static uniform-random image
//!   `A` through a single trainable convolution ("filter layer") into a
//!   synthetic image `B`, training the filter so the *frozen* global model
//!   assigns `B` the maximally ambiguous prediction
//!   `Y_D = [1/L, …, 1/L]`. Repeated `|S|` times for diversity.
//! * [`ZkaG`] — **G**enerator: a light-weight transposed-convolution
//!   generator maps a *fixed* noise batch `Z` to images, trained to
//!   **maximize** the global model's cross-entropy towards `Ỹ` — images the
//!   model confidently considers *not* `Ỹ`, then labelled `Ỹ`.
//!
//! Both variants then call the shared adversarial trainer
//! ([`fabflip_attacks::trainer`]) which minimizes `F(w, S) + λ·L_d` with the
//! Eq. 3 distance regularizer. Both implement the common
//! [`fabflip_attacks::Attack`] trait and plug into the `fabflip-fl`
//! simulator alongside the baselines.
//!
//! # Examples
//!
//! Craft one malicious update with ZKA-G, knowing nothing but the global
//! model:
//!
//! ```
//! use fabflip::{ZkaConfig, ZkaG};
//! use fabflip_attacks::{Attack, AttackContext, TaskInfo};
//! use fabflip_nn::models;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut global_model = models::fashion_cnn(&mut rng);
//! let global = global_model.flat_params();
//! let task = TaskInfo {
//!     channels: 1, height: 28, width: 28, num_classes: 10,
//!     synth_set_size: 8, local_lr: 0.05, local_batch: 8, local_epochs: 1,
//! };
//! let mut attack = ZkaG::new(ZkaConfig::fast());
//! let ctx = AttackContext {
//!     global: &global,
//!     prev_global: None,
//!     benign_updates: &[], // zero knowledge!
//!     n_selected: 10,
//!     n_malicious_selected: 2,
//!     task: &task,
//!     build_model: &|rng: &mut StdRng| models::fashion_cnn(rng),
//! };
//! let malicious = attack.craft(&ctx, &mut rng)?;
//! assert_eq!(malicious.len(), global.len());
//! # Ok::<(), fabflip_attacks::AttackError>(())
//! ```

mod config;
mod zka_g;
mod zka_r;

pub use config::ZkaConfig;
pub use fabflip_attacks::trainer::DistanceReg;
pub use zka_g::ZkaG;
pub use zka_r::ZkaR;
