use crate::ZkaConfig;
use fabflip_attacks::trainer::train_adversarial_classifier;
use fabflip_attacks::{Attack, AttackContext, AttackError, Capabilities, TaskInfo};
use fabflip_nn::losses::softmax_cross_entropy_hard_negated;
use fabflip_nn::{models, Sequential};
use fabflip_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// ZKA-G (Sec. IV-C): synthesize images with a light-weight
/// transposed-convolution generator trained against the global model.
///
/// A *fixed* noise batch `Z` (same seed every round, so the generator keeps
/// producing consistent data) feeds a freshly initialized TCNN generator
/// `G`; for `E` epochs, `G` is trained to **maximize** the frozen global
/// model's cross-entropy between its prediction on `G(Z)` and the
/// fabricated label `Ỹ` — images the model is confident are *not* `Ỹ`.
/// Training the local model on `(G(Z), Ỹ)` then injects a consistent,
/// low-variance bias, which is what makes ZKA-G stealthier than ZKA-R.
pub struct ZkaG {
    cfg: ZkaConfig,
    target: Option<usize>,
    last_losses: Vec<f32>,
}

impl std::fmt::Debug for ZkaG {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ZkaG")
            .field("cfg", &self.cfg)
            .field("target", &self.target)
            .finish()
    }
}

impl ZkaG {
    /// Creates the attack.
    pub fn new(cfg: ZkaConfig) -> ZkaG {
        ZkaG {
            cfg,
            target: None,
            last_losses: Vec::new(),
        }
    }

    /// The fabricated label `Ỹ` (chosen uniformly on first craft).
    pub fn target(&self) -> Option<usize> {
        self.target
    }

    /// Mean generation loss per epoch of the last craft (Fig. 6 trace).
    /// ZKA-G *maximizes* the cross-entropy, so the reported (positive)
    /// cross-entropy trace increases.
    pub fn last_generation_losses(&self) -> &[f32] {
        &self.last_losses
    }

    /// The fixed noise batch `Z` of shape `[|S|, z_dim]`.
    pub fn fixed_noise(&self, set_size: usize) -> Tensor {
        let mut zrng = StdRng::seed_from_u64(self.cfg.z_seed);
        Tensor::normal(vec![set_size, self.cfg.z_dim], 0.0, 1.0, &mut zrng)
    }

    /// Synthesizes the malicious image set `S = G(Z)` for the given frozen
    /// global model and target `Ỹ`, returning the images and the per-epoch
    /// cross-entropy trace (increasing, since it is maximized).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError`] when the architecture does not match or a
    /// forward/backward pass fails.
    pub fn synthesize(
        &self,
        global_model: &mut Sequential,
        task: &TaskInfo,
        target: usize,
        rng: &mut StdRng,
    ) -> Result<(Tensor, Vec<f32>), AttackError> {
        let z = self.fixed_noise(task.synth_set_size);
        // Fresh random generator every round (paper: "randomly initialized
        // before training"); consistency across rounds comes from Z.
        let mut gen =
            models::tcnn_generator(self.cfg.z_dim, task.channels, task.height, task.width, rng);
        let labels = vec![target; task.synth_set_size];
        let mut trace = Vec::new();
        if self.cfg.trained {
            for _ in 0..self.cfg.gen_epochs {
                gen.zero_grads();
                global_model.zero_grads();
                let imgs = gen.forward(&z)?;
                let logits = global_model.forward(&imgs)?;
                // Maximize CE(pred, Ỹ) ⇔ minimize its negation.
                let (neg_loss, grad) = softmax_cross_entropy_hard_negated(&logits, &labels)?;
                let grad_imgs = global_model.backward(&grad)?;
                gen.backward(&grad_imgs)?;
                gen.sgd_step(self.cfg.gen_lr);
                trace.push(-neg_loss); // report the (maximized) positive CE
            }
        }
        let s = gen.forward(&z)?;
        Ok((s, trace))
    }
}

impl Attack for ZkaG {
    fn craft(
        &mut self,
        ctx: &AttackContext<'_>,
        rng: &mut StdRng,
    ) -> Result<Vec<f32>, AttackError> {
        let target = *self
            .target
            .get_or_insert_with(|| rng.gen_range(0..ctx.task.num_classes));
        let mut global_model = (ctx.build_model)(rng);
        global_model
            .set_flat_params(ctx.global)
            .map_err(AttackError::Nn)?;
        let (s, trace) = self.synthesize(&mut global_model, ctx.task, target, rng)?;
        self.last_losses = trace;
        let mut local = (ctx.build_model)(rng);
        let labels = vec![target; s.shape()[0]];
        train_adversarial_classifier(
            &mut local,
            ctx.global,
            ctx.prev_global,
            &s,
            &labels,
            ctx.task.local_epochs,
            ctx.task.local_lr,
            ctx.task.local_batch,
            self.cfg.reg(),
            rng,
        )
    }

    fn name(&self) -> &'static str {
        "ZKA-G"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::zero_knowledge()
    }

    fn checkpoint_state(&self) -> Vec<u64> {
        // The flip target Ỹ is chosen lazily on the first craft and must
        // survive a resume; `last_losses` is diagnostic only.
        self.target.map(|t| vec![1, t as u64]).unwrap_or_default()
    }

    fn restore_state(&mut self, state: &[u64]) {
        if state.len() == 2 && state[0] == 1 {
            self.target = Some(state[1] as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabflip_nn::losses::softmax;
    use rand::SeedableRng;

    fn task() -> TaskInfo {
        TaskInfo {
            channels: 1,
            height: 28,
            width: 28,
            num_classes: 10,
            synth_set_size: 6,
            local_lr: 0.05,
            local_batch: 4,
            local_epochs: 1,
        }
    }

    fn builder(rng: &mut StdRng) -> Sequential {
        models::fashion_cnn(rng)
    }

    #[test]
    fn fixed_noise_is_identical_across_rounds() {
        let attack = ZkaG::new(ZkaConfig::paper());
        let z1 = attack.fixed_noise(5);
        let z2 = attack.fixed_noise(5);
        assert_eq!(z1.data(), z2.data());
        assert_eq!(z1.shape(), &[5, 32]);
    }

    #[test]
    fn generation_maximizes_cross_entropy_to_target() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut global = models::fashion_cnn(&mut rng);
        let mut cfg = ZkaConfig::paper();
        cfg.gen_epochs = 8;
        cfg.gen_lr = 0.1;
        let attack = ZkaG::new(cfg);
        let t = task();
        let target = 3usize;
        let (s, trace) = attack
            .synthesize(&mut global, &t, target, &mut rng)
            .unwrap();
        assert_eq!(s.shape(), &[6, 1, 28, 28]);
        assert!(
            trace.last().unwrap() >= trace.first().unwrap(),
            "CE trace should rise (maximization): {trace:?}"
        );
        // The generated images must have low probability for Ỹ.
        let logits = global.forward(&s).unwrap();
        let p = softmax(&logits);
        let l = t.num_classes;
        for i in 0..6 {
            let p_target = p.data()[i * l + target];
            assert!(
                p_target < 0.3,
                "image {i} still predicted as Ỹ with p {p_target}"
            );
        }
    }

    #[test]
    fn static_variant_produces_images_without_training() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut global = models::fashion_cnn(&mut rng);
        let attack = ZkaG::new(ZkaConfig::static_variant());
        let (s, trace) = attack
            .synthesize(&mut global, &task(), 0, &mut rng)
            .unwrap();
        assert!(trace.is_empty());
        assert_eq!(s.shape()[0], 6);
        assert!(s.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn craft_is_zero_knowledge_and_model_sized() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut gm = models::fashion_cnn(&mut rng);
        let global = gm.flat_params();
        let t = task();
        let ctx = AttackContext {
            global: &global,
            prev_global: Some(&global),
            benign_updates: &[], // no oracle
            n_selected: 10,
            n_malicious_selected: 2,
            task: &t,
            build_model: &builder,
        };
        let mut attack = ZkaG::new(ZkaConfig::fast());
        let w = attack.craft(&ctx, &mut rng).unwrap();
        assert_eq!(w.len(), global.len());
        assert_ne!(w, global);
        assert_eq!(attack.capabilities(), Capabilities::zero_knowledge());
    }

    #[test]
    fn zka_g_images_have_lower_variance_than_zka_r() {
        // The Fig. 4 claim: ZKA-R's full-image randomness produces more
        // diverse synthetic data than ZKA-G's shared generator + fixed Z.
        use crate::ZkaR;
        let mut rng = StdRng::seed_from_u64(4);
        let mut global = models::fashion_cnn(&mut rng);
        let mut t = task();
        t.synth_set_size = 10;
        let cfg = ZkaConfig::fast();
        let (s_r, _) = ZkaR::new(cfg)
            .synthesize(&mut global, &t, &mut rng)
            .unwrap();
        let (s_g, _) = ZkaG::new(cfg)
            .synthesize(&mut global, &t, 0, &mut rng)
            .unwrap();
        // Mean per-pixel variance across the set.
        let set_variance = |s: &Tensor| -> f32 {
            let n = s.shape()[0];
            let d: usize = s.shape()[1..].iter().product();
            let mut var_sum = 0.0f32;
            for j in 0..d {
                let mean: f32 = (0..n).map(|i| s.data()[i * d + j]).sum::<f32>() / n as f32;
                var_sum += (0..n)
                    .map(|i| (s.data()[i * d + j] - mean).powi(2))
                    .sum::<f32>()
                    / n as f32;
            }
            var_sum / d as f32
        };
        let vr = set_variance(&s_r);
        let vg = set_variance(&s_g);
        assert!(vr > vg, "ZKA-R variance {vr} should exceed ZKA-G {vg}");
    }
}
