use fabflip_attacks::trainer::DistanceReg;
use serde::{Deserialize, Serialize};

/// Configuration shared by both ZKA variants.
///
/// The defaults mirror the paper's setup; [`ZkaConfig::fast`] is a reduced
/// profile for tests and doc examples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZkaConfig {
    /// Train the filter layer / generator each round (`true`, the paper's
    /// main configuration) or use it randomly initialized without updates
    /// ("Static", Table IV).
    pub trained: bool,
    /// Strength λ of the distance-based regularizer (Eq. 3); `0` disables
    /// it (Table V ablation).
    pub reg_lambda: f32,
    /// Generation epochs `E` for the filter layer / generator. The paper's
    /// Fig. 6 shows convergence after only a few epochs.
    pub gen_epochs: usize,
    /// Learning rate for the filter layer / generator.
    pub gen_lr: f32,
    /// ZKA-R filter kernel size `J` (odd, "same" padding).
    pub filter_kernel: usize,
    /// ZKA-G noise dimensionality of `z`.
    pub z_dim: usize,
    /// Seed for the fixed noise batch `Z` of ZKA-G ("we use the same random
    /// seed over multiple rounds").
    pub z_seed: u64,
}

impl ZkaConfig {
    /// The paper's default configuration.
    pub fn paper() -> ZkaConfig {
        ZkaConfig {
            trained: true,
            reg_lambda: 1.0,
            gen_epochs: 5,
            gen_lr: 0.05,
            filter_kernel: 3,
            z_dim: 32,
            z_seed: 0xFAB_F11B,
        }
    }

    /// A reduced profile (fewer epochs) for tests and examples.
    pub fn fast() -> ZkaConfig {
        ZkaConfig {
            gen_epochs: 2,
            ..ZkaConfig::paper()
        }
    }

    /// The "Static" arm of Table IV: randomly initialized synthesizer,
    /// no training over rounds.
    pub fn static_variant() -> ZkaConfig {
        ZkaConfig {
            trained: false,
            ..ZkaConfig::paper()
        }
    }

    /// The "without regularization" arm of Table V.
    pub fn without_regularization() -> ZkaConfig {
        ZkaConfig {
            reg_lambda: 0.0,
            ..ZkaConfig::paper()
        }
    }

    /// The regularizer implied by `reg_lambda`.
    pub fn reg(&self) -> DistanceReg {
        DistanceReg {
            lambda: self.reg_lambda,
        }
    }
}

impl Default for ZkaConfig {
    fn default() -> Self {
        ZkaConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles() {
        let p = ZkaConfig::paper();
        assert!(p.trained);
        assert!(p.reg_lambda > 0.0);
        assert_eq!(p.filter_kernel % 2, 1);
        assert!(!ZkaConfig::static_variant().trained);
        assert_eq!(ZkaConfig::without_regularization().reg_lambda, 0.0);
        assert!(ZkaConfig::fast().gen_epochs < p.gen_epochs);
        assert_eq!(ZkaConfig::default(), p);
    }

    #[test]
    fn serde_roundtrip() {
        let p = ZkaConfig::paper();
        let s = serde_json::to_string(&p).unwrap();
        let back: ZkaConfig = serde_json::from_str(&s).unwrap();
        assert_eq!(p, back);
    }
}
