use crate::ZkaConfig;
use fabflip_attacks::trainer::train_adversarial_classifier;
use fabflip_attacks::{Attack, AttackContext, AttackError, Capabilities, TaskInfo};
use fabflip_nn::losses::softmax_cross_entropy_soft;
use fabflip_nn::{models, Sequential};
use fabflip_tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// ZKA-R (Sec. IV-B): synthesize ambiguous images by reverse engineering
/// the global model through a trainable filter layer.
///
/// For each of the `|S|` synthetic images: draw a static uniform-random
/// image `A`, map it through a fresh `J×J` convolution into `B`, and train
/// *only the filter* for `E` epochs to minimize the cross-entropy between
/// the frozen global model's prediction on `B` and the uniform target
/// `Y_D = [1/L, …, 1/L]`. Training on such maximally ambiguous data (all
/// labelled `Ỹ`) confuses the global model's optimization objective.
pub struct ZkaR {
    cfg: ZkaConfig,
    target: Option<usize>,
    last_losses: Vec<f32>,
}

impl std::fmt::Debug for ZkaR {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ZkaR")
            .field("cfg", &self.cfg)
            .field("target", &self.target)
            .finish()
    }
}

impl ZkaR {
    /// Creates the attack.
    pub fn new(cfg: ZkaConfig) -> ZkaR {
        ZkaR {
            cfg,
            target: None,
            last_losses: Vec::new(),
        }
    }

    /// The fabricated label `Ỹ` (chosen uniformly on first craft).
    pub fn target(&self) -> Option<usize> {
        self.target
    }

    /// Mean generation loss per epoch of the last craft (Fig. 6 trace).
    /// ZKA-R *minimizes* this loss, so the trace decreases.
    pub fn last_generation_losses(&self) -> &[f32] {
        &self.last_losses
    }

    /// Synthesizes the malicious image set `S` for the given frozen global
    /// model, returning the images `[|S|, C, H, W]` and the per-epoch mean
    /// generation loss.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError`] when the global weights do not fit the task
    /// architecture or a forward/backward pass fails.
    pub fn synthesize(
        &self,
        global_model: &mut Sequential,
        task: &TaskInfo,
        rng: &mut StdRng,
    ) -> Result<(Tensor, Vec<f32>), AttackError> {
        let l = task.num_classes;
        let uniform = Tensor::full(vec![1, l], 1.0 / l as f32);
        let mut images = Vec::with_capacity(task.synth_set_size);
        let mut epoch_losses = vec![
            0.0f32;
            if self.cfg.trained {
                self.cfg.gen_epochs
            } else {
                0
            }
        ];
        for _ in 0..task.synth_set_size {
            // Static random input A (fixed during filter training).
            let a = Tensor::uniform(
                vec![1, task.channels, task.height, task.width],
                0.0,
                1.0,
                rng,
            );
            let mut filter = models::filter_layer(task.channels, self.cfg.filter_kernel, rng);
            if self.cfg.trained {
                for (epoch, slot) in epoch_losses.iter_mut().enumerate() {
                    let _ = epoch;
                    filter.zero_grads();
                    global_model.zero_grads();
                    let b = filter.forward(&a)?;
                    let logits = global_model.forward(&b)?;
                    let (loss, grad) = softmax_cross_entropy_soft(&logits, &uniform)?;
                    // Backprop through the frozen global model into the
                    // image, then into the filter; only the filter steps.
                    let grad_b = global_model.backward(&grad)?;
                    filter.backward(&grad_b)?;
                    filter.sgd_step(self.cfg.gen_lr);
                    *slot += loss;
                }
            }
            let b = filter.forward(&a)?;
            images.push(b);
        }
        for slot in &mut epoch_losses {
            *slot /= task.synth_set_size.max(1) as f32;
        }
        let s = Tensor::concat_batch(&images).map_err(fabflip_nn::NnError::from)?;
        Ok((s, epoch_losses))
    }
}

impl Attack for ZkaR {
    fn craft(
        &mut self,
        ctx: &AttackContext<'_>,
        rng: &mut StdRng,
    ) -> Result<Vec<f32>, AttackError> {
        let target = *self
            .target
            .get_or_insert_with(|| rng.gen_range(0..ctx.task.num_classes));
        // Frozen global model (never stepped; its accumulated grads are
        // zeroed before every use).
        let mut global_model = (ctx.build_model)(rng);
        global_model
            .set_flat_params(ctx.global)
            .map_err(AttackError::Nn)?;
        let (s, losses) = self.synthesize(&mut global_model, ctx.task, rng)?;
        self.last_losses = losses;
        // Step 2: adversarial classifier training on (S, Ỹ) with L_d.
        let mut local = (ctx.build_model)(rng);
        let labels = vec![target; s.shape()[0]];
        train_adversarial_classifier(
            &mut local,
            ctx.global,
            ctx.prev_global,
            &s,
            &labels,
            ctx.task.local_epochs,
            ctx.task.local_lr,
            ctx.task.local_batch,
            self.cfg.reg(),
            rng,
        )
    }

    fn name(&self) -> &'static str {
        "ZKA-R"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::zero_knowledge()
    }

    fn checkpoint_state(&self) -> Vec<u64> {
        // The flip target Ỹ is chosen lazily on the first craft and must
        // survive a resume; `last_losses` is diagnostic only.
        self.target.map(|t| vec![1, t as u64]).unwrap_or_default()
    }

    fn restore_state(&mut self, state: &[u64]) {
        if state.len() == 2 && state[0] == 1 {
            self.target = Some(state[1] as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabflip_nn::losses::softmax;
    use rand::SeedableRng;

    fn task() -> TaskInfo {
        TaskInfo {
            channels: 1,
            height: 28,
            width: 28,
            num_classes: 10,
            synth_set_size: 6,
            local_lr: 0.05,
            local_batch: 4,
            local_epochs: 1,
        }
    }

    fn builder(rng: &mut StdRng) -> Sequential {
        models::fashion_cnn(rng)
    }

    #[test]
    fn synthesized_images_have_task_geometry() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut global = models::fashion_cnn(&mut rng);
        let attack = ZkaR::new(ZkaConfig::fast());
        let (s, losses) = attack.synthesize(&mut global, &task(), &mut rng).unwrap();
        assert_eq!(s.shape(), &[6, 1, 28, 28]);
        assert_eq!(losses.len(), ZkaConfig::fast().gen_epochs);
        assert!(s.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn training_reduces_generation_loss_and_raises_ambiguity() {
        // The trained filter must push predictions towards uniform compared
        // to the static filter; the loss trace must decrease.
        let mut rng = StdRng::seed_from_u64(1);
        let mut global = models::fashion_cnn(&mut rng);
        let mut t = task();
        t.synth_set_size = 4;
        let mut cfg = ZkaConfig::paper();
        cfg.gen_epochs = 8;
        cfg.gen_lr = 0.1;
        let attack = ZkaR::new(cfg);
        let (s, losses) = attack.synthesize(&mut global, &t, &mut rng).unwrap();
        assert!(
            losses.last().unwrap() <= losses.first().unwrap(),
            "generation loss not decreasing: {losses:?}"
        );
        // Ambiguity: max softmax probability close-ish to uniform.
        let logits = global.forward(&s).unwrap();
        let p = softmax(&logits);
        let max_p = p.data().iter().fold(0.0f32, |a, &b| a.max(b));
        assert!(
            max_p < 0.9,
            "trained images still confidently classified: {max_p}"
        );
    }

    #[test]
    fn static_variant_skips_training() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut global = models::fashion_cnn(&mut rng);
        let attack = ZkaR::new(ZkaConfig::static_variant());
        let (s, losses) = attack.synthesize(&mut global, &task(), &mut rng).unwrap();
        assert!(losses.is_empty());
        assert_eq!(s.shape()[0], 6);
    }

    #[test]
    fn craft_returns_model_sized_update_with_fixed_target() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut gm = models::fashion_cnn(&mut rng);
        let global = gm.flat_params();
        let t = task();
        let ctx = AttackContext {
            global: &global,
            prev_global: None,
            benign_updates: &[],
            n_selected: 10,
            n_malicious_selected: 2,
            task: &t,
            build_model: &builder,
        };
        let mut attack = ZkaR::new(ZkaConfig::fast());
        let w = attack.craft(&ctx, &mut rng).unwrap();
        assert_eq!(w.len(), global.len());
        assert_ne!(w, global);
        let target = attack.target().unwrap();
        let _ = attack.craft(&ctx, &mut rng).unwrap();
        assert_eq!(attack.target().unwrap(), target, "Ỹ must stay fixed");
        assert_eq!(
            attack.last_generation_losses().len(),
            ZkaConfig::fast().gen_epochs
        );
    }

    #[test]
    fn zero_knowledge_capabilities() {
        assert_eq!(
            ZkaR::new(ZkaConfig::paper()).capabilities(),
            Capabilities::zero_knowledge()
        );
    }

    #[test]
    fn checkpoint_state_roundtrips_the_lazy_target() {
        let mut fresh = ZkaR::new(ZkaConfig::fast());
        assert!(fresh.checkpoint_state().is_empty(), "no target chosen yet");
        fresh.restore_state(&[]); // fresh start must be a no-op
        assert_eq!(fresh.target(), None);

        let mut chosen = ZkaR::new(ZkaConfig::fast());
        chosen.restore_state(&[1, 7]);
        assert_eq!(chosen.target(), Some(7));
        assert_eq!(chosen.checkpoint_state(), vec![1, 7]);

        let mut g = crate::ZkaG::new(ZkaConfig::fast());
        g.restore_state(&g.checkpoint_state());
        assert_eq!(g.target(), None);
        g.restore_state(&[1, 3]);
        assert_eq!(g.checkpoint_state(), vec![1, 3]);
    }
}
