//! Scratch probe: clean FL learnability at the test's tiny scale.
//! `cargo run --release -p fabflip-fl --example probe -- <seed> <rounds>`

use fabflip_fl::{simulate_observed, FlConfig, TaskKind};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed: u64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(5);
    let rounds: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(10);
    let cfg = FlConfig::builder(TaskKind::Fashion)
        .rounds(rounds)
        .n_clients(12)
        .clients_per_round(6)
        .train_size(240)
        .test_size(80)
        .synth_set_size(6)
        .seed(seed)
        .build();
    let r = simulate_observed(&cfg, |rec| {
        println!("round {:>2}: acc {:.4}", rec.round, rec.accuracy);
    })
    .unwrap();
    println!("max acc: {:.4}", r.max_accuracy());
}
