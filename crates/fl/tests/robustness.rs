//! Robustness contract tests (DESIGN.md §4d): the fault plan is a pure
//! function of `(seed, round, client)`, every defense degrades gracefully
//! under faults, and a killed-and-resumed run is bitwise identical to an
//! uninterrupted one.

use fabflip_agg::DefenseKind;
use fabflip_fl::checkpoint::{fingerprint, path_for};
use fabflip_fl::{
    simulate, simulate_with, AttackSpec, CheckpointSpec, Codec, FaultPlan, FlConfig, RunResult,
    StragglerPolicy, TaskKind,
};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes tests that mutate the process-global thread budget.
fn thread_lock() -> &'static Mutex<()> {
    static LOCK: Mutex<()> = Mutex::new(());
    &LOCK
}

/// Unique scratch directory (pid + counter; no wall clock).
fn test_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static N: AtomicUsize = AtomicUsize::new(0);
    let d = std::env::temp_dir().join(format!(
        "fabflip-it-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&d).expect("test dir");
    d
}

fn mixed_faults() -> FaultPlan {
    FaultPlan {
        dropout: 0.2,
        straggler: 0.1,
        malformed: 0.1,
        straggler_policy: StragglerPolicy::Stale {
            discount_milli: 500,
        },
    }
}

fn faulted_cfg(defense: DefenseKind) -> FlConfig {
    FlConfig::builder(TaskKind::Fashion)
        .rounds(3)
        .n_clients(12)
        .clients_per_round(6)
        .train_size(240)
        .test_size(80)
        .synth_set_size(6)
        .attack(AttackSpec::RandomWeights)
        .defense(defense)
        .faults(mixed_faults())
        .seed(7)
        .build()
}

fn acc_bits(r: &RunResult) -> Vec<u32> {
    r.rounds.iter().map(|x| x.accuracy.to_bits()).collect()
}

fn model_bits(r: &RunResult) -> Vec<u32> {
    r.final_model.iter().map(|w| w.to_bits()).collect()
}

/// Acceptance criterion: under 20% dropout plus stragglers and malformed
/// payloads, no defense panics or errors — every round either aggregates
/// (with a dynamically shrunk quorum) or is recorded as skipped, and the
/// per-round ledger reconciles to `clients_per_round` exactly.
#[test]
fn fault_matrix_smoke_every_defense_degrades_gracefully() {
    let defenses = [
        DefenseKind::FedAvg,
        DefenseKind::Krum { f: 2 },
        DefenseKind::MKrum { f: 2 },
        DefenseKind::TrMean { trim: 2 },
        DefenseKind::Median,
        DefenseKind::Bulyan { f: 2 },
        DefenseKind::FoolsGold,
        DefenseKind::NormBound {
            max_norm_milli: 500,
        },
    ];
    for defense in defenses {
        let cfg = faulted_cfg(defense);
        let r = simulate(&cfg).unwrap_or_else(|e| panic!("{defense:?} failed under faults: {e}"));
        assert_eq!(r.rounds.len(), cfg.rounds);
        for rec in &r.rounds {
            assert!(
                rec.reconciles(cfg.clients_per_round),
                "{defense:?} round {} ledger does not reconcile: {rec:?}",
                rec.round
            );
            // A round either delivered something to the aggregator or was
            // skipped with the global model carried forward.
            assert!(
                rec.delivered > 0 || rec.skipped,
                "{defense:?} round {} neither aggregated nor skipped: {rec:?}",
                rec.round
            );
        }
    }
}

#[test]
fn faulted_transcript_is_thread_count_invariant() {
    let _guard = thread_lock().lock().unwrap_or_else(|e| e.into_inner());
    let cfg = faulted_cfg(DefenseKind::MKrum { f: 2 });
    let prev = fabflip_tensor::par::max_threads();
    let mut results = Vec::new();
    for threads in [1usize, 2, 7] {
        fabflip_tensor::par::set_max_threads(threads);
        results.push(simulate(&cfg).unwrap());
    }
    fabflip_tensor::par::set_max_threads(prev);
    assert_eq!(acc_bits(&results[0]), acc_bits(&results[1]));
    assert_eq!(acc_bits(&results[0]), acc_bits(&results[2]));
    assert_eq!(model_bits(&results[0]), model_bits(&results[1]));
    assert_eq!(model_bits(&results[0]), model_bits(&results[2]));
    assert_eq!(results[0], results[1]);
    assert_eq!(results[0], results[2]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Satellite 3: the fault schedule is a pure function of
    /// `(seed, round, client)` — identical under any thread budget and
    /// across a mid-enumeration `set_max_threads` resize.
    #[test]
    fn fault_plan_is_pure_per_seed_round_client(
        seed in 0u64..1000,
        dropout in 0.0f32..0.4,
        straggler in 0.0f32..0.3,
        malformed in 0.0f32..0.3,
    ) {
        let plan = FaultPlan {
            dropout,
            straggler,
            malformed,
            straggler_policy: StragglerPolicy::Drop,
        };
        let schedule = |plan: &FaultPlan| -> Vec<_> {
            (0u64..6)
                .flat_map(|round| (0u64..16).map(move |client| (round, client)))
                .map(|(round, client)| plan.fault_for(seed, round, client))
                .collect()
        };
        let _guard = thread_lock().lock().unwrap_or_else(|e| e.into_inner());
        let prev = fabflip_tensor::par::max_threads();
        fabflip_tensor::par::set_max_threads(1);
        let at_one = schedule(&plan);
        fabflip_tensor::par::set_max_threads(2);
        let at_two = schedule(&plan);
        fabflip_tensor::par::set_max_threads(7);
        let at_seven = schedule(&plan);
        // Mid-enumeration resize: the schedule must not notice.
        let mut resized = Vec::new();
        for (i, (round, client)) in (0u64..6)
            .flat_map(|r| (0u64..16).map(move |c| (r, c)))
            .enumerate()
        {
            if i == 48 {
                fabflip_tensor::par::set_max_threads(2);
            }
            resized.push(plan.fault_for(seed, round, client));
        }
        fabflip_tensor::par::set_max_threads(prev);
        prop_assert_eq!(&at_one, &at_two);
        prop_assert_eq!(&at_one, &at_seven);
        prop_assert_eq!(&at_one, &resized);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Tentpole acceptance: kill the run at any round boundary, resume
    /// from the checkpoint, and the completed transcript (accuracies and
    /// final model, bitwise; every per-round record) equals the
    /// uninterrupted run's — at thread counts 1, 2 and 7.
    #[test]
    fn resumed_transcript_equals_uninterrupted_bitwise(
        kill_round in 1usize..3,
        every in 1usize..3,
        tidx in 0usize..3,
    ) {
        let threads = [1usize, 2, 7][tidx];
        let cfg = faulted_cfg(DefenseKind::MKrum { f: 2 });
        let _guard = thread_lock().lock().unwrap_or_else(|e| e.into_inner());
        let prev = fabflip_tensor::par::max_threads();
        fabflip_tensor::par::set_max_threads(threads);
        let full = simulate(&cfg).unwrap();

        // "Kill" at the round boundary: run with a truncated round budget
        // (the fingerprint excludes `rounds`, so the checkpoint is the
        // same file an interrupted full run would have left).
        let dir = test_dir("resume");
        let spec = CheckpointSpec::new(&dir, every);
        let mut short = cfg.clone();
        short.rounds = kill_round;
        simulate_with(&short, Some(&spec), |_| {}).unwrap();

        let mut replayed = Vec::new();
        let resumed = simulate_with(&cfg, Some(&spec), |r| replayed.push(r.round)).unwrap();
        fabflip_tensor::par::set_max_threads(prev);

        prop_assert_eq!(&replayed, &(kill_round..cfg.rounds).collect::<Vec<_>>());
        prop_assert_eq!(acc_bits(&resumed), acc_bits(&full));
        prop_assert_eq!(model_bits(&resumed), model_bits(&full));
        prop_assert_eq!(&resumed, &full);
        std::fs::remove_dir_all(&dir).ok();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Quantized transport (DESIGN.md §4e): with F16 or I8 on the wire,
    /// the full faulted transcript (accuracies and final model, bitwise)
    /// is invariant under thread counts 1/2/7, and a kill/resume at any
    /// round boundary reproduces it exactly — the encode→decode
    /// roundtrip is a pure per-payload function, so it composes with the
    /// §4b/§4d determinism contracts unchanged.
    #[test]
    fn quantized_transcript_is_thread_invariant_and_resumable(
        codec_idx in 0usize..2,
        kill_round in 1usize..3,
    ) {
        let codec = [Codec::F16, Codec::I8][codec_idx];
        let mut cfg = faulted_cfg(DefenseKind::TrMean { trim: 2 });
        cfg.transport = codec;
        let _guard = thread_lock().lock().unwrap_or_else(|e| e.into_inner());
        let prev = fabflip_tensor::par::max_threads();
        let mut results = Vec::new();
        for threads in [1usize, 2, 7] {
            fabflip_tensor::par::set_max_threads(threads);
            results.push(simulate(&cfg).unwrap());
        }

        // Kill at the round boundary and resume (still at 7 threads).
        let dir = test_dir("quant-resume");
        let spec = CheckpointSpec::new(&dir, 1);
        let mut short = cfg.clone();
        short.rounds = kill_round;
        simulate_with(&short, Some(&spec), |_| {}).unwrap();
        let resumed = simulate_with(&cfg, Some(&spec), |_| {}).unwrap();
        fabflip_tensor::par::set_max_threads(prev);

        prop_assert_eq!(acc_bits(&results[0]), acc_bits(&results[1]));
        prop_assert_eq!(acc_bits(&results[0]), acc_bits(&results[2]));
        prop_assert_eq!(model_bits(&results[0]), model_bits(&results[1]));
        prop_assert_eq!(model_bits(&results[0]), model_bits(&results[2]));
        prop_assert_eq!(model_bits(&resumed), model_bits(&results[0]));
        prop_assert_eq!(&resumed, &results[0]);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Satellite 4 (end-to-end): corrupting the newest checkpoint falls back
/// to `*.prev.json`; corrupting both restarts from round 0 — and in every
/// case the final transcript is still bitwise identical, just recomputed
/// from further back. Atomic writes leave no temp litter.
#[test]
fn corrupt_checkpoints_degrade_to_recomputation_not_garbage() {
    let cfg = faulted_cfg(DefenseKind::Median);
    let full = simulate(&cfg).unwrap();
    let dir = test_dir("corrupt");
    let spec = CheckpointSpec::new(&dir, 1);

    let mut short = cfg.clone();
    short.rounds = 2;
    simulate_with(&short, Some(&spec), |_| {}).unwrap();
    let path = path_for(&dir, &fingerprint(&cfg));
    let prev = path.with_extension("prev.json");
    assert!(path.exists(), "current checkpoint written");
    assert!(prev.exists(), "previous checkpoint retained");
    let no_tmp = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .all(|e| e.path().extension().is_none_or(|x| x != "tmp"));
    assert!(no_tmp, "atomic writes must not leave temp files");

    // Truncate the newest file: the round-1 prev checkpoint takes over,
    // rounds 1 and 2 are recomputed, and the result still matches.
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, &text[..text.len() / 3]).unwrap();
    let mut replayed = Vec::new();
    let resumed = simulate_with(&cfg, Some(&spec), |r| replayed.push(r.round)).unwrap();
    assert_eq!(replayed, vec![1, 2], "resume fell back to the prev file");
    assert_eq!(resumed, full);

    // Corrupt both copies: a fresh start from round 0, same transcript.
    for p in [&path, &prev] {
        std::fs::write(p, "{ not json").unwrap();
    }
    let mut replayed = Vec::new();
    let resumed = simulate_with(&cfg, Some(&spec), |r| replayed.push(r.round)).unwrap();
    assert_eq!(replayed, vec![0, 1, 2], "both corrupt → round 0");
    assert_eq!(resumed, full);
    std::fs::remove_dir_all(&dir).ok();
}

/// An attack with lazily chosen cross-round state (ZKA's flip target) must
/// survive the kill/resume boundary via `Attack::checkpoint_state`.
#[test]
fn resume_preserves_lazily_chosen_attack_state() {
    let mut cfg = faulted_cfg(DefenseKind::FedAvg);
    cfg.attack = AttackSpec::ZkaR {
        cfg: fabflip::ZkaConfig::fast(),
    };
    let full = simulate(&cfg).unwrap();
    let dir = test_dir("attack-state");
    let spec = CheckpointSpec::new(&dir, 1);
    let mut short = cfg.clone();
    short.rounds = 2;
    simulate_with(&short, Some(&spec), |_| {}).unwrap();
    let resumed = simulate_with(&cfg, Some(&spec), |_| {}).unwrap();
    assert_eq!(
        resumed, full,
        "a resumed ZKA run re-choosing its target would diverge here"
    );
    std::fs::remove_dir_all(&dir).ok();
}
