use fabflip::{ZkaConfig, ZkaG, ZkaR};
use fabflip_attacks::trainer::DistanceReg;
use fabflip_attacks::{Attack, Fang, Lie, MinMax, MinSum, RandomWeights, RealDataFlip};
use fabflip_data::Dataset;
use serde::{Deserialize, Serialize};

/// Serializable description of the adversary's strategy — the attack axis
/// of the paper's experiment grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttackSpec {
    /// No attack (clean runs; with [`fabflip_agg::DefenseKind::FedAvg`]
    /// this measures `acc_natk`).
    None,
    /// LIE (Baruch et al., 2019) with the derived `z`.
    Lie,
    /// Fang et al. (2020), TRmean/Median directed-deviation variant.
    Fang,
    /// Min-Max (Shejwalkar & Houmansadr, 2021), defense-agnostic variant.
    MinMax,
    /// Min-Sum (same authors), the sum-of-distances sibling (extension).
    MinSum,
    /// Random model weights (Sec. IV-A strawman).
    RandomWeights,
    /// Real-data label flip (Fig. 7 comparator); the runner hands the
    /// adversary a Dirichlet shard of real images.
    RealData {
        /// Distance-regularizer strength λ.
        lambda: f32,
    },
    /// ZKA-R — the paper's reverse-engineering variant.
    ZkaR {
        /// Variant configuration.
        cfg: ZkaConfig,
    },
    /// ZKA-G — the paper's generator variant.
    ZkaG {
        /// Variant configuration.
        cfg: ZkaConfig,
    },
}

impl AttackSpec {
    /// Instantiates the attack. `adversary_data` is consulted only by
    /// [`AttackSpec::RealData`] (the only variant that owns raw images).
    /// Returns `None` for [`AttackSpec::None`].
    pub fn build(&self, adversary_data: Option<Dataset>) -> Option<Box<dyn Attack>> {
        match self {
            AttackSpec::None => None,
            AttackSpec::Lie => Some(Box::new(Lie::new())),
            AttackSpec::Fang => Some(Box::new(Fang::new())),
            AttackSpec::MinMax => Some(Box::new(MinMax::new())),
            AttackSpec::MinSum => Some(Box::new(MinSum::new())),
            AttackSpec::RandomWeights => Some(Box::new(RandomWeights::new())),
            AttackSpec::RealData { lambda } => {
                let data = adversary_data.unwrap_or_else(|| {
                    Dataset::new(
                        fabflip_tensor::Tensor::zeros(vec![0, 1, 1, 1]),
                        Vec::new(),
                        1,
                    )
                });
                Some(Box::new(RealDataFlip::new(
                    data,
                    DistanceReg { lambda: *lambda },
                )))
            }
            AttackSpec::ZkaR { cfg } => Some(Box::new(ZkaR::new(*cfg))),
            AttackSpec::ZkaG { cfg } => Some(Box::new(ZkaG::new(*cfg))),
        }
    }

    /// Whether this attack reads the benign-update oracle (the simulator
    /// only exposes it to attacks that assume it, keeping the ZKA variants
    /// honest about their zero-knowledge claim).
    pub fn uses_benign_oracle(&self) -> bool {
        matches!(
            self,
            AttackSpec::Lie | AttackSpec::Fang | AttackSpec::MinMax | AttackSpec::MinSum
        )
    }

    /// Whether the runner must provision real data for the adversary.
    pub fn needs_adversary_data(&self) -> bool {
        matches!(self, AttackSpec::RealData { .. })
    }

    /// Display name matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            AttackSpec::None => "None",
            AttackSpec::Lie => "LIE",
            AttackSpec::Fang => "Fang",
            AttackSpec::MinMax => "Min-Max",
            AttackSpec::MinSum => "Min-Sum",
            AttackSpec::RandomWeights => "Random",
            AttackSpec::RealData { .. } => "Real-data",
            AttackSpec::ZkaR { .. } => "ZKA-R",
            AttackSpec::ZkaG { .. } => "ZKA-G",
        }
    }

    /// The five attacks of Table II / Fig. 5, in the paper's column order.
    pub fn paper_grid() -> Vec<AttackSpec> {
        vec![
            AttackSpec::Fang,
            AttackSpec::Lie,
            AttackSpec::MinMax,
            AttackSpec::ZkaR {
                cfg: ZkaConfig::paper(),
            },
            AttackSpec::ZkaG {
                cfg: ZkaConfig::paper(),
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_oracle_flags() {
        assert!(AttackSpec::None.build(None).is_none());
        for spec in AttackSpec::paper_grid() {
            let attack = spec.build(None).expect("buildable");
            assert_eq!(attack.name(), spec.label());
        }
        assert!(AttackSpec::Lie.uses_benign_oracle());
        assert!(AttackSpec::Fang.uses_benign_oracle());
        assert!(AttackSpec::MinMax.uses_benign_oracle());
        assert!(!AttackSpec::ZkaR {
            cfg: ZkaConfig::paper()
        }
        .uses_benign_oracle());
        assert!(!AttackSpec::ZkaG {
            cfg: ZkaConfig::paper()
        }
        .uses_benign_oracle());
        assert!(!AttackSpec::RandomWeights.uses_benign_oracle());
        assert!(AttackSpec::RealData { lambda: 1.0 }.needs_adversary_data());
    }

    #[test]
    fn oracle_flag_matches_capabilities() {
        // The simulator's oracle gating must agree with each attack's own
        // declared Table I profile.
        for spec in AttackSpec::paper_grid() {
            let attack = spec.build(None).unwrap();
            assert_eq!(
                attack.capabilities().needs_benign_updates,
                spec.uses_benign_oracle(),
                "{}",
                spec.label()
            );
        }
    }

    #[test]
    fn serde_roundtrip() {
        let spec = AttackSpec::ZkaG {
            cfg: ZkaConfig::paper(),
        };
        let s = serde_json::to_string(&spec).unwrap();
        let back: AttackSpec = serde_json::from_str(&s).unwrap();
        assert_eq!(spec, back);
    }
}
