//! Streaming server ingest (DESIGN.md §4e): one-at-a-time update
//! delivery through the server validator into bounded
//! [`StreamingAggregator`] state.
//!
//! The batch simulator materializes every accepted payload before the
//! defense runs — O(n·d) server memory. At million-client scale the
//! server instead runs one [`StreamingServer`] per round: each arriving
//! update (optionally quantized for the wire) is decoded into a scratch
//! buffer, validated exactly like the batch transport path
//! (`round::server_accepts`: dimension, all-finite, not the all-zero dead
//! buffer), and either folded into O(shards·d + reservoir·d) aggregation
//! state or quarantined. Nothing per-client is retained.

use crate::FlError;
use fabflip_agg::{Aggregation, DefenseKind, StreamingAggregator, StreamingConfig};
use fabflip_tensor::quant::{self, Encoded};
use fabflip_tensor::scratch::{scratch_f32, Purpose};

/// The fate of one submitted update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Submit {
    /// Validated and folded into the aggregation state.
    Accepted,
    /// Rejected by the server validator (wrong dimension, non-finite, or
    /// the all-zero dead-buffer sentinel); not folded.
    Quarantined,
}

/// Per-round streaming ingest: validator + quarantine accounting in
/// front of a [`StreamingAggregator`].
#[derive(Debug)]
pub struct StreamingServer {
    agg: StreamingAggregator,
    d: usize,
    accepted: usize,
    quarantined: usize,
}

impl StreamingServer {
    /// Opens a round of streaming ingest for `kind` over `d`-dimension
    /// updates. `reference` is the current global model (required by
    /// NormBound, ignored otherwise).
    ///
    /// # Errors
    ///
    /// Propagates [`StreamingAggregator::new`] errors (rule has no
    /// streaming form, degenerate sizes).
    pub fn new(
        kind: DefenseKind,
        d: usize,
        cfg: StreamingConfig,
        reference: Option<Vec<f32>>,
    ) -> Result<StreamingServer, FlError> {
        Ok(StreamingServer {
            agg: StreamingAggregator::new(kind, d, cfg, reference)?,
            d,
            accepted: 0,
            quarantined: 0,
        })
    }

    /// Submits one wire-encoded update. The payload is dequantized into a
    /// thread-local scratch buffer (no per-client allocation), validated,
    /// and folded or quarantined.
    pub fn submit(&mut self, enc: &Encoded, weight: f32) -> Submit {
        if enc.len() != self.d {
            self.quarantined += 1;
            return Submit::Quarantined;
        }
        let mut buf = scratch_f32(Purpose::QuantDecode, self.d);
        quant::decode_into(enc, &mut buf);
        self.submit_validated(&buf, weight)
    }

    /// Submits one already-decoded f32 update (the uncompressed wire
    /// format, and the benchmark entry point).
    pub fn submit_f32(&mut self, payload: &[f32], weight: f32) -> Submit {
        self.submit_validated(payload, weight)
    }

    fn submit_validated(&mut self, payload: &[f32], weight: f32) -> Submit {
        if crate::round::server_accepts(payload, self.d) {
            self.agg.ingest(payload, weight);
            self.accepted += 1;
            Submit::Accepted
        } else {
            self.quarantined += 1;
            Submit::Quarantined
        }
    }

    /// Updates folded into the aggregation state so far.
    pub fn accepted(&self) -> usize {
        self.accepted
    }

    /// Updates rejected by the validator so far.
    pub fn quarantined(&self) -> usize {
        self.quarantined
    }

    /// Bytes of f32 aggregation state currently resident (see
    /// [`StreamingAggregator::resident_bytes`]); independent of how many
    /// updates were submitted.
    pub fn resident_bytes(&self) -> usize {
        self.agg.resident_bytes()
    }

    /// Closes the round and produces the aggregate.
    ///
    /// # Errors
    ///
    /// Propagates [`StreamingAggregator::finalize`] errors — in
    /// particular [`fabflip_agg::AggError::NoUpdates`] when every
    /// submission was quarantined.
    pub fn finalize(self) -> Result<Aggregation, FlError> {
        Ok(self.agg.finalize()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabflip_agg::{Defense, FedAvg, Selection};
    use fabflip_tensor::quant::Codec;

    fn synth(n: usize, d: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|u| {
                (0..d)
                    .map(|i| 0.1 + ((u * d + i) as f32 * 0.29).sin())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn streaming_round_matches_batch_fedavg() {
        let ups = synth(25, 13);
        let mut srv =
            StreamingServer::new(DefenseKind::FedAvg, 13, StreamingConfig::default(), None)
                .unwrap();
        for u in &ups {
            assert_eq!(srv.submit_f32(u, 1.0), Submit::Accepted);
        }
        assert_eq!(srv.accepted(), 25);
        assert_eq!(srv.quarantined(), 0);
        let agg = srv.finalize().unwrap();
        let batch = FedAvg::new().aggregate(&ups, &[1.0; 25]).unwrap();
        for (a, b) in agg.model.iter().zip(&batch.model) {
            assert!((a - b).abs() <= 1e-5 * b.abs().max(1.0));
        }
    }

    #[test]
    fn validator_quarantines_without_poisoning_state() {
        let d = 6;
        let mut srv =
            StreamingServer::new(DefenseKind::Median, d, StreamingConfig::default(), None).unwrap();
        assert_eq!(srv.submit_f32(&vec![1.0; d], 1.0), Submit::Accepted);
        assert_eq!(srv.submit_f32(&vec![1.0; d + 1], 1.0), Submit::Quarantined);
        assert_eq!(srv.submit_f32(&vec![f32::NAN; d], 1.0), Submit::Quarantined);
        assert_eq!(srv.submit_f32(&vec![0.0; d], 1.0), Submit::Quarantined);
        assert_eq!(srv.submit_f32(&vec![3.0; d], 1.0), Submit::Accepted);
        assert_eq!((srv.accepted(), srv.quarantined()), (2, 3));
        let agg = srv.finalize().unwrap();
        assert!(agg.model.iter().all(|&m| (1.0..=3.0).contains(&m)));
        assert_eq!(agg.selection, Selection::PerCoordinate);
    }

    #[test]
    fn quantized_submission_equals_roundtripped_f32_bitwise() {
        let ups = synth(10, 9);
        for codec in [Codec::F32, Codec::F16, Codec::I8] {
            let mut wire =
                StreamingServer::new(DefenseKind::FedAvg, 9, StreamingConfig::default(), None)
                    .unwrap();
            let mut local =
                StreamingServer::new(DefenseKind::FedAvg, 9, StreamingConfig::default(), None)
                    .unwrap();
            for u in &ups {
                let enc = quant::encode(codec, u);
                assert_eq!(wire.submit(&enc, 2.0), Submit::Accepted);
                let mut rt = u.clone();
                quant::roundtrip_in_place(codec, &mut rt);
                assert_eq!(local.submit_f32(&rt, 2.0), Submit::Accepted);
            }
            let a = wire.finalize().unwrap();
            let b = local.finalize().unwrap();
            for (x, y) in a.model.iter().zip(&b.model) {
                assert_eq!(x.to_bits(), y.to_bits(), "{codec:?}");
            }
        }
    }

    #[test]
    fn wrong_length_encoded_payload_is_quarantined() {
        let mut srv =
            StreamingServer::new(DefenseKind::FedAvg, 4, StreamingConfig::default(), None).unwrap();
        let enc = quant::encode(Codec::I8, &[1.0, 2.0]);
        assert_eq!(srv.submit(&enc, 1.0), Submit::Quarantined);
        assert!(matches!(
            srv.finalize(),
            Err(FlError::Agg(fabflip_agg::AggError::NoUpdates))
        ));
    }

    #[test]
    fn resident_state_is_bounded_while_n_grows() {
        let d = 64;
        let mut srv =
            StreamingServer::new(DefenseKind::FedAvg, d, StreamingConfig::default(), None).unwrap();
        let u = vec![0.5f32; d];
        srv.submit_f32(&u, 1.0);
        let bytes = srv.resident_bytes();
        for _ in 0..5000 {
            srv.submit_f32(&u, 1.0);
        }
        assert_eq!(srv.resident_bytes(), bytes);
        assert_eq!(srv.accepted(), 5001);
    }
}
