//! The paper's evaluation metrics (Sec. V-B).

use serde::{Deserialize, Serialize};

/// Per-round bookkeeping of one simulation.
///
/// Beyond the paper's ASR/DPR inputs, every round accounts for the fate
/// of each of the `K` sampled clients (DESIGN.md §4d): the degradation
/// counters below reconcile exactly to `clients_per_round` —
/// [`RoundRecord::reconciles`] states the identity — so partial
/// participation is observable, never silent. All counter fields default
/// to zero on deserialization, keeping records written before the fault
/// model readable.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Round index `t`.
    pub round: usize,
    /// Global test accuracy after aggregation.
    pub accuracy: f32,
    /// Malicious updates delivered to the defense this round (the DPR
    /// denominator: submissions, not merely sampled clients).
    pub malicious_selected: usize,
    /// Malicious updates the defense included (only meaningful for
    /// selection defenses; 0 otherwise).
    pub malicious_passed: usize,
    /// Whether the defense reported a per-update selection this round.
    pub selection_available: bool,
    /// Updates handed to the aggregator (fresh + stale deliveries).
    #[serde(default)]
    pub delivered: usize,
    /// Stale (previous-round straggler) entries among `delivered`.
    #[serde(default)]
    pub stale: usize,
    /// Submissions lost in transit (dropout faults, plus stragglers under
    /// the `Drop` policy).
    #[serde(default)]
    pub dropped: usize,
    /// Submissions that missed the deadline and were held for delivery
    /// next round (`Stale` straggler policy).
    #[serde(default)]
    pub straggling: usize,
    /// Fresh submissions the server's validator quarantined (malformed or
    /// non-finite payloads).
    #[serde(default)]
    pub quarantined: usize,
    /// Stale deliveries quarantined on arrival.
    #[serde(default)]
    pub stale_quarantined: usize,
    /// Sampled clients with no local data: they never submit.
    #[serde(default)]
    pub offline: usize,
    /// Sampled clients whose local training produced non-finite weights:
    /// they fail to submit.
    #[serde(default)]
    pub diverged: usize,
    /// Sampled malicious clients that submitted nothing (no attack
    /// configured, or an oracle-dependent attack starved of its oracle).
    #[serde(default)]
    pub silent: usize,
    /// The round produced no new global model: no deliveries, the
    /// surviving cohort fell below the defense's dynamic quorum, or the
    /// rule's precondition failed. The previous model is carried forward.
    #[serde(default)]
    pub skipped: bool,
}

impl RoundRecord {
    /// The degradation-accounting identity: every one of the `k` sampled
    /// clients is delivered fresh, dropped, held stale, quarantined,
    /// offline, diverged, or silent — exactly once. (`delivered − stale`
    /// is the *fresh* delivery count; stale entries were accounted as
    /// `straggling` by the round that sampled them.)
    pub fn reconciles(&self, k: usize) -> bool {
        (self.delivered - self.stale)
            + self.dropped
            + self.straggling
            + self.quarantined
            + self.offline
            + self.diverged
            + self.silent
            == k
    }
}

/// The outcome of one FL simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Per-round records, in order.
    pub rounds: Vec<RoundRecord>,
    /// The final global model (flat weights). Excluded from serialization —
    /// it is large and derivable by re-running the deterministic sim.
    #[serde(skip)]
    pub final_model: Vec<f32>,
}

impl RunResult {
    /// Maximum global accuracy over the run — the paper's `acc_max`
    /// (for clean FedAvg runs, `acc_natk`).
    pub fn max_accuracy(&self) -> f32 {
        // fabcheck::allow(unordered_float_reduction): running max over rounds in recorded order
        self.rounds.iter().map(|r| r.accuracy).fold(0.0, f32::max)
    }

    /// Final-round accuracy.
    pub fn final_accuracy(&self) -> f32 {
        self.rounds.last().map_or(0.0, |r| r.accuracy)
    }

    /// Defense pass rate (Eq. 5): the fraction of selected malicious
    /// clients whose update the defense included, over the whole run.
    /// `None` when the defense never exposed a selection (TRmean/Median —
    /// "NA" in the paper) or no malicious client was ever sampled.
    pub fn dpr(&self) -> Option<f32> {
        let mut passed = 0usize;
        let mut selected = 0usize;
        let mut any_selection = false;
        for r in &self.rounds {
            if r.selection_available {
                any_selection = true;
                passed += r.malicious_passed;
                selected += r.malicious_selected;
            }
        }
        if !any_selection || selected == 0 {
            return None;
        }
        Some(passed as f32 / selected as f32)
    }

    /// Accuracy trace (one entry per round).
    pub fn accuracy_trace(&self) -> Vec<f32> {
        self.rounds.iter().map(|r| r.accuracy).collect()
    }

    /// Rounds that produced no new global model (no quorum after faults).
    pub fn skipped_rounds(&self) -> usize {
        self.rounds.iter().filter(|r| r.skipped).count()
    }

    /// First round whose accuracy reaches `threshold`, or `None` — the
    /// convergence-interference view of an untargeted attack (the paper's
    /// objective includes "even interfere with its convergence").
    pub fn rounds_to_reach(&self, threshold: f32) -> Option<usize> {
        self.rounds
            .iter()
            .find(|r| r.accuracy >= threshold)
            .map(|r| r.round)
    }
}

/// Attack success rate (Eq. 4): the accuracy drop caused by the attack,
/// relative to the clean no-attack/no-defense accuracy `acc_natk`:
/// `ASR = (acc_natk − acc_max) / acc_natk`.
///
/// Clamped to `[0, 1]`: a run whose defended accuracy exceeds the clean
/// baseline has a fully failed attack.
pub fn attack_success_rate(acc_natk: f32, acc_max_under_attack: f32) -> f32 {
    if acc_natk <= 0.0 {
        return 0.0;
    }
    ((acc_natk - acc_max_under_attack) / acc_natk).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(round: usize, acc: f32, sel: usize, pass: usize, avail: bool) -> RoundRecord {
        RoundRecord {
            round,
            accuracy: acc,
            malicious_selected: sel,
            malicious_passed: pass,
            selection_available: avail,
            ..RoundRecord::default()
        }
    }

    fn result(rounds: Vec<RoundRecord>) -> RunResult {
        RunResult {
            rounds,
            final_model: Vec::new(),
        }
    }

    #[test]
    fn max_and_final_accuracy() {
        let r = result(vec![
            record(0, 0.3, 0, 0, true),
            record(1, 0.7, 0, 0, true),
            record(2, 0.5, 0, 0, true),
        ]);
        assert_eq!(r.max_accuracy(), 0.7);
        assert_eq!(r.final_accuracy(), 0.5);
        assert_eq!(r.accuracy_trace(), vec![0.3, 0.7, 0.5]);
    }

    #[test]
    fn dpr_counts_only_selection_rounds() {
        let r = result(vec![
            record(0, 0.1, 2, 1, true),
            record(1, 0.1, 2, 2, true),
            record(2, 0.1, 5, 0, false), // statistic defense round: ignored
        ]);
        assert_eq!(r.dpr(), Some(0.75));
    }

    #[test]
    fn dpr_is_na_for_statistic_defenses_or_no_malicious() {
        let r = result(vec![record(0, 0.1, 3, 0, false)]);
        assert_eq!(r.dpr(), None);
        let r = result(vec![record(0, 0.1, 0, 0, true)]);
        assert_eq!(r.dpr(), None);
    }

    #[test]
    fn asr_formula_and_clamping() {
        assert!((attack_success_rate(0.82, 0.526) - 0.3585).abs() < 1e-3); // Table II ZKA-R/mKrum
        assert_eq!(attack_success_rate(0.8, 0.9), 0.0);
        assert_eq!(attack_success_rate(0.0, 0.5), 0.0);
        assert_eq!(attack_success_rate(0.5, 0.0), 1.0);
    }

    #[test]
    fn rounds_to_reach_finds_first_crossing() {
        let r = result(vec![
            record(0, 0.2, 0, 0, true),
            record(1, 0.5, 0, 0, true),
            record(2, 0.4, 0, 0, true),
            record(3, 0.6, 0, 0, true),
        ]);
        assert_eq!(r.rounds_to_reach(0.5), Some(1));
        assert_eq!(r.rounds_to_reach(0.55), Some(3));
        assert_eq!(r.rounds_to_reach(0.9), None);
    }

    #[test]
    fn reconciliation_identity_counts_every_sampled_client() {
        // 6 sampled: 2 fresh-delivered, 1 dropped, 1 held stale, 1
        // quarantined, 1 offline — plus one stale delivery from the
        // previous round (not part of this round's 6).
        let r = RoundRecord {
            round: 0,
            delivered: 3,
            stale: 1,
            dropped: 1,
            straggling: 1,
            quarantined: 1,
            offline: 1,
            ..RoundRecord::default()
        };
        assert!(r.reconciles(6));
        assert!(!r.reconciles(7));
        // A fault-free full round.
        let r = RoundRecord {
            round: 0,
            delivered: 6,
            ..RoundRecord::default()
        };
        assert!(r.reconciles(6));
    }

    #[test]
    fn skipped_round_counter() {
        let mut a = record(0, 0.1, 0, 0, false);
        a.skipped = true;
        let r = result(vec![a, record(1, 0.2, 0, 0, false)]);
        assert_eq!(r.skipped_rounds(), 1);
    }

    #[test]
    fn old_records_deserialize_with_zero_fault_counters() {
        let legacy = r#"{"round":3,"accuracy":0.5,"malicious_selected":2,
            "malicious_passed":1,"selection_available":true}"#;
        let r: RoundRecord = serde_json::from_str(legacy).unwrap();
        assert_eq!(r.round, 3);
        assert_eq!(r.delivered, 0);
        assert_eq!(r.quarantined, 0);
        assert!(!r.skipped);
    }

    #[test]
    fn empty_run_is_harmless() {
        let r = result(Vec::new());
        assert_eq!(r.max_accuracy(), 0.0);
        assert_eq!(r.final_accuracy(), 0.0);
        assert_eq!(r.dpr(), None);
    }
}
