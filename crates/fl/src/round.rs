//! Round building blocks shared by the batch simulator ([`crate::simulate`])
//! and the network serving shell (`fabflip-serve`): client-side staging
//! ([`ClientFleet`]) and server-side round close ([`ServerCore`]).
//!
//! This split is the purity boundary of DESIGN.md §4g. Everything that
//! decides the next global model — client selection, local training, the
//! adversary's crafted update, the defense — is a pure function of
//! `(cfg, round)` plus the ordered, validated submission log handed to
//! [`ServerCore::close_round`]. The batch simulator builds that log from
//! its in-process fault transport; the TCP server builds it from network
//! submissions sorted by staging sequence number. Both paths therefore
//! produce bitwise-identical transcripts (pinned by the serve parity
//! test), and a kill -9 at any point resumes to the same global model.

use crate::faults::{streams, sub_seed, ClientFault};
use crate::metrics::RoundRecord;
use crate::{FlConfig, FlError};
use fabflip_agg::{AggError, Aggregation, Defense, Selection};
use fabflip_attacks::{Attack, AttackContext, TaskInfo};
use fabflip_data::{dirichlet_partition, Dataset};
use fabflip_nn::losses::{accuracy, softmax_cross_entropy_hard};
use fabflip_nn::Sequential;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Fixed task seed: all runs (clean baseline and attacked) share the same
/// class prototypes, so `acc_natk` and `acc_max` are comparable.
pub(crate) const TASK_SEED: u64 = 0xDA7A_5EED;

/// The server's per-submission validator: a payload is accepted when it
/// has the model dimension, every coordinate is finite, and it is not the
/// all-zero dead-buffer sentinel. Quarantining here is *degradation
/// accounting*; the aggregation rules additionally filter malformed input
/// themselves (defense in depth). Shared by the batch fault transport,
/// [`crate::StreamingServer`], and the `fabflip-serve` ingest path.
pub fn server_accepts(payload: &[f32], d: usize) -> bool {
    payload.len() == d && payload.iter().all(|v| v.is_finite()) && payload.iter().any(|&v| v != 0.0)
}

/// Evaluates `model` on `test`, batching to bound peak memory.
///
/// # Errors
///
/// Propagates forward-pass failures.
pub fn evaluate_model(
    model: &mut Sequential,
    test: &Dataset,
    batch: usize,
) -> Result<f32, FlError> {
    let n = test.len();
    if n == 0 {
        return Ok(0.0);
    }
    let mut correct_weighted = 0.0f32;
    let idx: Vec<usize> = (0..n).collect();
    for chunk in idx.chunks(batch.max(1)) {
        let b = test.gather(chunk);
        let logits = model.forward(&b.images)?;
        correct_weighted += accuracy(&logits, &b.labels) * chunk.len() as f32;
    }
    Ok(correct_weighted / n as f32)
}

/// Trains one benign client: start at `global`, run `local_epochs` of
/// mini-batch SGD on the client's shard, return the flat update.
pub(crate) fn train_benign_client(
    cfg: &FlConfig,
    train: &Dataset,
    shard: &[usize],
    global: &[f32],
    rng: &mut StdRng,
) -> Result<Vec<f32>, FlError> {
    let mut model = cfg.task.build_model(rng);
    model.set_flat_params(global)?;
    for _ in 0..cfg.local_epochs {
        for b in train.shuffled_batches(shard, cfg.batch, rng) {
            model.train_step(&b.images, cfg.lr, |logits| {
                softmax_cross_entropy_hard(logits, &b.labels)
            })?;
        }
    }
    Ok(model.flat_params())
}

/// Result of one selected client's local phase.
enum LocalOutcome {
    /// Adversary-controlled: its update is crafted centrally, not here.
    Malicious,
    /// No local data: the client never submits.
    Offline,
    /// Local training produced non-finite weights: fails to submit.
    Diverged,
    /// Dropout fault: the client is unreachable before it computes.
    Dropped,
    /// A finished benign update and its sample weight.
    Trained(Vec<f32>, f32),
}

type ClientOutcome = Result<LocalOutcome, FlError>;

/// A submission staged for this round's transport. Its position in
/// [`StagedRound::submissions`] is its canonical sequence number: the
/// order the batch transport delivers in, and the order the serve path
/// restores by sorting the network log before closing the round.
#[derive(Debug, Clone, PartialEq)]
pub struct StagedSubmission {
    /// The simulated in-transit fault that strikes this submission, from
    /// the config's fault plan (`None` for every submission when the plan
    /// is inactive — the serve path requires an inactive plan and gets its
    /// faults from the wire instead).
    pub fault: Option<ClientFault>,
    /// Submitting client id.
    pub client: usize,
    /// Whether this is one of the adversary's copies.
    pub malicious: bool,
    /// Aggregation weight (local sample count; `synth_set_size` claimed by
    /// malicious copies).
    pub weight: f32,
    /// The raw f32 update, pre-quantization.
    pub payload: Vec<f32>,
}

/// One round of client-side work: staged submissions in canonical order
/// plus the accounting of selected clients that never submit.
#[derive(Debug, Default)]
pub struct StagedRound {
    /// Submissions in canonical (selection, then malicious-copy) order.
    pub submissions: Vec<StagedSubmission>,
    /// Selected clients with no local data.
    pub offline: usize,
    /// Benign clients whose local training went non-finite.
    pub diverged: usize,
    /// Clients dropped *before* local compute by the fault plan.
    pub dropped: usize,
    /// Selected malicious clients with nothing to submit (no attack
    /// configured, or an oracle-dependent attack with an empty oracle).
    pub silent: usize,
}

/// The client side of one FL deployment: datasets, the Dirichlet
/// partition, the adversary-controlled subset and the (stateful) attack.
/// [`ClientFleet::stage_round`] is everything that happens *before* the
/// wire — identical whether the wire is the in-process fault transport or
/// a TCP socket.
pub struct ClientFleet {
    cfg: FlConfig,
    train: Dataset,
    shards: Vec<Vec<usize>>,
    malicious: Vec<usize>,
    attack: Option<Box<dyn Attack>>,
    task_info: TaskInfo,
}

impl ClientFleet {
    /// Builds the fleet for `cfg`: synthesizes the training split,
    /// partitions it, draws the malicious subset, and constructs the
    /// attack (pooling the adversary's shards when it needs real data).
    ///
    /// # Errors
    ///
    /// Returns [`FlError`] on invalid configuration or partition failure.
    pub fn new(cfg: &FlConfig) -> Result<ClientFleet, FlError> {
        cfg.validate().map_err(FlError::BadConfig)?;
        let spec = cfg.task.spec();
        let train = Dataset::synthesize_split(
            &spec,
            cfg.train_size,
            TASK_SEED,
            sub_seed(cfg.seed, streams::TRAIN_DATA, 0, 0),
        );
        let shards = dirichlet_partition(
            &train,
            cfg.n_clients,
            cfg.beta,
            sub_seed(cfg.seed, streams::PARTITION, 0, 0),
        )?;

        // Adversary-controlled clients: a uniformly random subset, kept as
        // a sorted vector (membership via binary search) so every
        // iteration over it is deterministic — a HashSet here leaks hash
        // order into the adversary's data pool (fabcheck:
        // nondeterministic-collection).
        let mut setup_rng = StdRng::seed_from_u64(sub_seed(cfg.seed, streams::MALICIOUS_SET, 0, 0));
        let mut ids: Vec<usize> = (0..cfg.n_clients).collect();
        ids.shuffle(&mut setup_rng);
        let mut malicious: Vec<usize> = ids[..cfg.n_malicious()].to_vec();
        malicious.sort_unstable();

        // The Fig. 7 real-data adversary pools its clients' Dirichlet
        // shards.
        let adversary_data = if cfg.attack.needs_adversary_data() {
            let mut pool: Vec<usize> = malicious
                .iter()
                .flat_map(|&c| shards[c].iter().copied())
                .collect();
            pool.sort_unstable();
            let b = train.gather(&pool);
            Some(Dataset::new(b.images, b.labels, train.num_classes()))
        } else {
            None
        };
        let attack = cfg.attack.build(adversary_data);

        let task_info = TaskInfo {
            channels: spec.channels,
            height: spec.height,
            width: spec.width,
            num_classes: spec.num_classes,
            synth_set_size: cfg.synth_set_size,
            local_lr: cfg.lr,
            local_batch: cfg.batch,
            local_epochs: cfg.local_epochs,
        };
        Ok(ClientFleet {
            cfg: cfg.clone(),
            train,
            shards,
            malicious,
            attack,
            task_info,
        })
    }

    /// Whether `client` is adversary-controlled.
    pub fn is_malicious(&self, client: usize) -> bool {
        self.malicious.binary_search(&client).is_ok()
    }

    /// The attack's opaque cross-round state (`Attack::checkpoint_state`).
    pub fn attack_state(&self) -> Vec<u64> {
        self.attack
            .as_ref()
            .map_or_else(Vec::new, |a| a.checkpoint_state())
    }

    /// Restores attack state captured by [`ClientFleet::attack_state`].
    pub fn restore_attack_state(&mut self, state: &[u64]) {
        if let Some(a) = self.attack.as_mut() {
            a.restore_state(state);
        }
    }

    /// Runs the client side of one round against the current `global`
    /// model: sample `K` clients, compute the fault schedule, train benign
    /// clients in parallel, craft the adversary's update, and stage every
    /// submission in canonical order. Pure per `(cfg, round, global)` and
    /// the attack's cross-round state — thread-count invariant and
    /// identical after a resume.
    ///
    /// # Errors
    ///
    /// Propagates training and attack failures.
    pub fn stage_round(
        &mut self,
        round: usize,
        global: &[f32],
        prev_global: Option<&[f32]>,
    ) -> Result<StagedRound, FlError> {
        let cfg = &self.cfg;
        let round_u64 = round as u64;
        let mut round_rng =
            StdRng::seed_from_u64(sub_seed(cfg.seed, streams::CLIENT_SAMPLING, round_u64, 0));
        let mut pool: Vec<usize> = (0..cfg.n_clients).collect();
        pool.shuffle(&mut round_rng);
        let selected = &pool[..cfg.clients_per_round];

        // The round's fault schedule — pure per (seed, round, client), so
        // it is thread-count invariant and recomputed identically after a
        // resume (no fault state is checkpointed beyond pending stales).
        let faults: Vec<Option<ClientFault>> = selected
            .iter()
            .map(|&c| cfg.faults.fault_for(cfg.seed, round_u64, c as u64))
            .collect();
        let malicious_sel: Vec<(usize, usize)> = selected
            .iter()
            .enumerate()
            .filter(|&(_, &c)| self.is_malicious(c))
            .map(|(s, &c)| (s, c))
            .collect();

        // Benign local training. Every client already draws from an
        // independent RNG stream keyed by (seed, round, client), so
        // clients train in parallel and their updates are merged in
        // selection order — the transcript is bitwise identical to the
        // sequential loop (see the determinism contract in
        // `fabflip_tensor::par`).
        let train_ref = &self.train;
        let shards_ref = &self.shards;
        let malicious_ref = &self.malicious;
        let faults_ref = &faults;
        let outcomes: Vec<ClientOutcome> = fabflip_tensor::par::map_collect(selected.len(), |s| {
            let client = selected[s];
            if malicious_ref.binary_search(&client).is_ok() {
                return Ok(LocalOutcome::Malicious);
            }
            let shard = &shards_ref[client];
            if shard.is_empty() {
                return Ok(LocalOutcome::Offline);
            }
            if faults_ref[s] == Some(ClientFault::Dropout) {
                // Dropout strikes before local compute: nothing to train.
                return Ok(LocalOutcome::Dropped);
            }
            let mut crng = StdRng::seed_from_u64(sub_seed(
                cfg.seed,
                streams::CLIENT_TRAIN,
                round_u64,
                client as u64,
            ));
            let w = train_benign_client(cfg, train_ref, shard, global, &mut crng)?;
            if w.iter().any(|v| !v.is_finite()) {
                // Local training diverged (possible once the global model
                // is poisoned): a real client would fail to submit. Skip
                // it so non-finite values never reach attacks or defenses.
                return Ok(LocalOutcome::Diverged);
            }
            Ok(LocalOutcome::Trained(w, shard.len() as f32))
        });

        let mut out = StagedRound::default();
        // The adversary's oracle is the benign updates as *computed* — its
        // white-box client-level view, before transport faults strike
        // (dropout happens pre-compute, so dropped clients are absent).
        let mut benign_updates: Vec<Vec<f32>> = Vec::new();
        for (s, outcome) in outcomes.into_iter().enumerate() {
            match outcome? {
                LocalOutcome::Malicious => {}
                LocalOutcome::Offline => out.offline += 1,
                LocalOutcome::Diverged => out.diverged += 1,
                LocalOutcome::Dropped => out.dropped += 1,
                LocalOutcome::Trained(w, weight) => {
                    benign_updates.push(w.clone());
                    out.submissions.push(StagedSubmission {
                        fault: faults[s],
                        client: selected[s],
                        malicious: false,
                        weight,
                        payload: w,
                    });
                }
            }
        }

        // Adversarial crafting: one update for all malicious clients,
        // staged pre-transport (the adversary does not know the fault
        // schedule; per-copy Sybil noise is drawn in selection order for
        // every copy, faulted or not, so the draw sequence matches the
        // fault-free transcript).
        let malicious_selected = malicious_sel.len();
        if malicious_selected > 0 {
            if let Some(attack) = self.attack.as_mut() {
                let empty: Vec<Vec<f32>> = Vec::new();
                let oracle: &[Vec<f32>] = if cfg.attack.uses_benign_oracle() {
                    &benign_updates
                } else {
                    &empty
                };
                let task = cfg.task;
                let build_model = move |rng: &mut StdRng| task.build_model(rng);
                let ctx = AttackContext {
                    global,
                    prev_global,
                    benign_updates: oracle,
                    n_selected: cfg.clients_per_round,
                    n_malicious_selected: malicious_selected,
                    task: &self.task_info,
                    build_model: &build_model,
                };
                let mut arng =
                    StdRng::seed_from_u64(sub_seed(cfg.seed, streams::ATTACK, round_u64, 0));
                match attack.craft(&ctx, &mut arng) {
                    Ok(w_mal) => {
                        for &(s, client) in &malicious_sel {
                            let mut copy = w_mal.clone();
                            if cfg.sybil_noise > 0.0 {
                                // Sec. III-A: independent per-copy noise to
                                // break Sybil-similarity detection.
                                use rand::Rng;
                                for v in &mut copy {
                                    let u1: f32 = arng.gen_range(f32::EPSILON..1.0);
                                    let u2: f32 = arng.gen_range(0.0..1.0);
                                    let n = (-2.0 * u1.ln()).sqrt()
                                        * (std::f32::consts::TAU * u2).cos();
                                    *v += cfg.sybil_noise * n;
                                }
                            }
                            out.submissions.push(StagedSubmission {
                                fault: faults[s],
                                client,
                                malicious: true,
                                weight: cfg.synth_set_size.max(1) as f32,
                                payload: copy,
                            });
                        }
                    }
                    // An oracle-dependent attack cannot act in a round
                    // whose oracle is empty or unusable: malicious clients
                    // stay silent.
                    Err(fabflip_attacks::AttackError::NeedsBenignUpdates(_)) => {
                        out.silent += malicious_selected;
                    }
                    Err(e) => return Err(e.into()),
                }
            } else {
                // No attack configured: sampled malicious clients submit
                // nothing (the clean-baseline behaviour, now accounted).
                out.silent += malicious_selected;
            }
        }
        Ok(out)
    }
}

/// The ordered, validated submission log for one round plus its
/// degradation accounting — everything [`ServerCore::close_round`] needs.
/// `updates[i]`, `weights[i]` are delivery-order aligned;
/// `malicious_indices` indexes into them (ground truth for DPR).
#[derive(Debug, Default)]
pub struct RoundInput {
    /// Accepted payloads in canonical delivery order.
    pub updates: Vec<Vec<f32>>,
    /// Aggregation weight per accepted payload.
    pub weights: Vec<f32>,
    /// Indices into `updates` that are the adversary's.
    pub malicious_indices: Vec<usize>,
    /// Recompute the defense for the delivered cohort
    /// (`DefenseKind::for_cohort`) instead of running the configured rule
    /// as-is. The batch path sets this under a live fault plan; the serve
    /// path sets it when the round deadline fired with a short cohort.
    pub degrade: bool,
    /// Stale (previous-round straggler) deliveries among `updates`.
    pub stale_delivered: usize,
    /// Clients lost to dropout (pre-compute or in transit).
    pub dropped: usize,
    /// Submissions held over to the next round as stale.
    pub straggling: usize,
    /// Submissions rejected by the server validator this round.
    pub quarantined: usize,
    /// Stale deliveries rejected by the server validator.
    pub stale_quarantined: usize,
    /// Selected clients with no local data.
    pub offline: usize,
    /// Benign clients whose local training went non-finite.
    pub diverged: usize,
    /// Selected malicious clients that submitted nothing.
    pub silent: usize,
}

/// The server side of one FL deployment: the held-out test set, the
/// configured defense, the optional FLTrust root, and the global model.
/// [`ServerCore::close_round`] is a pure function of the [`RoundInput`]
/// log and the core's current state, so any shell that reconstructs the
/// same log — batch transport or TCP — reaches the same next model.
pub struct ServerCore {
    cfg: FlConfig,
    test: Dataset,
    defense: Box<dyn Defense>,
    fltrust_root: Option<Dataset>,
    global_model: Sequential,
    global: Vec<f32>,
    prev_global: Option<Vec<f32>>,
}

impl ServerCore {
    /// Builds the server for `cfg`: test split, defense, optional FLTrust
    /// root, and the seeded initial global model.
    ///
    /// # Errors
    ///
    /// Returns [`FlError`] on invalid configuration or defense
    /// construction failure.
    pub fn new(cfg: &FlConfig) -> Result<ServerCore, FlError> {
        cfg.validate().map_err(FlError::BadConfig)?;
        let spec = cfg.task.spec();
        let test = Dataset::synthesize_split(
            &spec,
            cfg.test_size,
            TASK_SEED,
            sub_seed(cfg.seed, streams::TEST_DATA, 0, 0),
        );
        let defense = cfg.defense.build()?;
        // FLTrust extension: the server's clean root dataset (same task,
        // independent sample stream).
        let fltrust_root = cfg.fltrust_root_size.map(|n| {
            Dataset::synthesize_split(
                &spec,
                n,
                TASK_SEED,
                sub_seed(cfg.seed, streams::FLTRUST_ROOT, 0, 0),
            )
        });
        let mut init_rng = StdRng::seed_from_u64(sub_seed(cfg.seed, streams::MODEL_INIT, 0, 0));
        let mut global_model = cfg.task.build_model(&mut init_rng);
        let global = global_model.flat_params();
        Ok(ServerCore {
            cfg: cfg.clone(),
            test,
            defense,
            fltrust_root,
            global_model,
            global,
            prev_global: None,
        })
    }

    /// The model dimension `d`.
    pub fn dim(&self) -> usize {
        self.global.len()
    }

    /// The current global model parameters.
    pub fn global(&self) -> &[f32] {
        &self.global
    }

    /// The previous global model, once any round has aggregated.
    pub fn prev_global(&self) -> Option<&[f32]> {
        self.prev_global.as_deref()
    }

    /// Restores checkpointed model state.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::Checkpoint`] when the restored dimension does
    /// not match this config's model.
    pub fn restore(
        &mut self,
        global: Vec<f32>,
        prev_global: Option<Vec<f32>>,
    ) -> Result<(), FlError> {
        if global.len() != self.global.len() {
            return Err(FlError::Checkpoint(format!(
                "restored model has dimension {} (expected {})",
                global.len(),
                self.global.len()
            )));
        }
        self.global_model.set_flat_params(&global)?;
        self.global = global;
        self.prev_global = prev_global;
        Ok(())
    }

    /// Closes one round: aggregate the validated log under the configured
    /// defense (with graceful cohort degradation when `input.degrade`),
    /// advance the global model, evaluate, and produce the round record.
    /// An impossible quorum skips the round and carries the model forward.
    ///
    /// # Errors
    ///
    /// Propagates aggregation errors other than the tolerated
    /// too-few/no-updates quorum failures, and evaluation failures.
    pub fn close_round(&mut self, round: usize, input: RoundInput) -> Result<RoundRecord, FlError> {
        let cfg = &self.cfg;
        let round_u64 = round as u64;
        let updates = &input.updates;
        let weights = &input.weights;
        let mut malicious_passed = 0usize;
        let mut selection_available = false;
        let mut skipped = false;
        let outcome: Option<Result<Aggregation, AggError>> = if updates.is_empty() {
            None
        } else if let Some(root) = &self.fltrust_root {
            // FLTrust: the server computes its own root update, then
            // trust-scores the clients against it (any cohort n ≥ 1).
            let mut srng =
                StdRng::seed_from_u64(sub_seed(cfg.seed, streams::FLTRUST_SERVER, round_u64, 0));
            let all: Vec<usize> = (0..root.len()).collect();
            let server_update = train_benign_client(cfg, root, &all, &self.global, &mut srng)?;
            Some(fabflip_agg::fltrust_aggregate(
                updates,
                &self.global,
                &server_update,
            ))
        } else {
            let effective = if input.degrade {
                cfg.defense.for_cohort(updates.len())
            } else {
                Some(cfg.defense)
            };
            match effective {
                None => None,
                Some(kind) if kind == cfg.defense => Some(self.defense.aggregate_with_reference(
                    updates,
                    weights,
                    Some(&self.global),
                )),
                Some(kind) => Some(kind.build()?.aggregate_with_reference(
                    updates,
                    weights,
                    Some(&self.global),
                )),
            }
        };
        match outcome {
            Some(Ok(agg)) => {
                if let Selection::Chosen(ref kept) = agg.selection {
                    selection_available = true;
                    malicious_passed = kept
                        .iter()
                        .filter(|i| input.malicious_indices.contains(i))
                        .count();
                }
                self.prev_global = Some(std::mem::replace(&mut self.global, agg.model));
                self.global_model.set_flat_params(&self.global)?;
            }
            Some(Err(AggError::TooFewUpdates { .. })) | Some(Err(AggError::NoUpdates)) => {
                // No quorum this round: global model carried forward.
                skipped = true;
            }
            Some(Err(e)) => return Err(e.into()),
            None => skipped = true,
        }

        let acc = evaluate_model(&mut self.global_model, &self.test, 100)?;
        Ok(RoundRecord {
            round,
            accuracy: acc,
            // DPR denominator: malicious submissions actually delivered.
            malicious_selected: input.malicious_indices.len(),
            malicious_passed,
            selection_available,
            delivered: input.updates.len(),
            stale: input.stale_delivered,
            dropped: input.dropped,
            straggling: input.straggling,
            quarantined: input.quarantined,
            stale_quarantined: input.stale_quarantined,
            offline: input.offline,
            diverged: input.diverged,
            silent: input.silent,
            skipped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaskKind;

    fn tiny_cfg() -> FlConfig {
        FlConfig::builder(TaskKind::Fashion)
            .rounds(2)
            .n_clients(8)
            .clients_per_round(4)
            .train_size(160)
            .test_size(40)
            .synth_set_size(4)
            .seed(9)
            .build()
    }

    #[test]
    fn staging_is_deterministic_and_ordered() {
        let cfg = tiny_cfg();
        let mut a = ClientFleet::new(&cfg).unwrap();
        let mut b = ClientFleet::new(&cfg).unwrap();
        let core = ServerCore::new(&cfg).unwrap();
        let ra = a.stage_round(0, core.global(), None).unwrap();
        let rb = b.stage_round(0, core.global(), None).unwrap();
        assert_eq!(ra.submissions, rb.submissions);
        assert!(!ra.submissions.is_empty());
        assert!(ra.submissions.iter().all(|s| s.fault.is_none()));
    }

    #[test]
    fn close_round_is_a_pure_function_of_the_log() {
        let cfg = tiny_cfg();
        let mut fleet = ClientFleet::new(&cfg).unwrap();
        let mut core_a = ServerCore::new(&cfg).unwrap();
        let mut core_b = ServerCore::new(&cfg).unwrap();
        let staged = fleet.stage_round(0, core_a.global(), None).unwrap();
        let mk_input = || RoundInput {
            updates: staged
                .submissions
                .iter()
                .map(|s| s.payload.clone())
                .collect(),
            weights: staged.submissions.iter().map(|s| s.weight).collect(),
            malicious_indices: staged
                .submissions
                .iter()
                .enumerate()
                .filter(|(_, s)| s.malicious)
                .map(|(i, _)| i)
                .collect(),
            ..RoundInput::default()
        };
        let ra = core_a.close_round(0, mk_input()).unwrap();
        let rb = core_b.close_round(0, mk_input()).unwrap();
        assert_eq!(ra, rb);
        let bits =
            |c: &ServerCore| -> Vec<u32> { c.global().iter().map(|w| w.to_bits()).collect() };
        assert_eq!(bits(&core_a), bits(&core_b));
    }

    #[test]
    fn restore_rejects_wrong_dimension() {
        let cfg = tiny_cfg();
        let mut core = ServerCore::new(&cfg).unwrap();
        assert!(matches!(
            core.restore(vec![1.0; 3], None),
            Err(FlError::Checkpoint(_))
        ));
    }
}
