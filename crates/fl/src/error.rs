use fabflip_agg::AggError;
use fabflip_attacks::AttackError;
use fabflip_data::PartitionError;
use fabflip_nn::NnError;
use std::fmt;

/// Error type for federated-learning simulations.
#[derive(Debug, Clone, PartialEq)]
pub enum FlError {
    /// Data partitioning failed.
    Partition(PartitionError),
    /// A local training or evaluation step failed.
    Nn(NnError),
    /// The server-side aggregation failed.
    Agg(AggError),
    /// The adversary failed to craft an update.
    Attack(AttackError),
    /// The configuration was inconsistent.
    BadConfig(String),
    /// Writing a checkpoint failed (reading never errors: corrupt
    /// checkpoints degrade to recomputation, see `checkpoint::load`).
    Checkpoint(String),
}

impl fmt::Display for FlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlError::Partition(e) => write!(f, "partition error: {e}"),
            FlError::Nn(e) => write!(f, "nn error: {e}"),
            FlError::Agg(e) => write!(f, "aggregation error: {e}"),
            FlError::Attack(e) => write!(f, "attack error: {e}"),
            FlError::BadConfig(msg) => write!(f, "bad config: {msg}"),
            FlError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
        }
    }
}

impl std::error::Error for FlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlError::Partition(e) => Some(e),
            FlError::Nn(e) => Some(e),
            FlError::Agg(e) => Some(e),
            FlError::Attack(e) => Some(e),
            FlError::BadConfig(_) | FlError::Checkpoint(_) => None,
        }
    }
}

#[doc(hidden)]
impl From<PartitionError> for FlError {
    fn from(e: PartitionError) -> Self {
        FlError::Partition(e)
    }
}

#[doc(hidden)]
impl From<NnError> for FlError {
    fn from(e: NnError) -> Self {
        FlError::Nn(e)
    }
}

#[doc(hidden)]
impl From<AggError> for FlError {
    fn from(e: AggError) -> Self {
        FlError::Agg(e)
    }
}

#[doc(hidden)]
impl From<AttackError> for FlError {
    fn from(e: AttackError) -> Self {
        FlError::Attack(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = FlError::BadConfig("rounds = 0".into());
        assert!(e.to_string().contains("rounds"));
        assert!(e.source().is_none());
        let e = FlError::Agg(AggError::NoUpdates);
        assert!(e.source().is_some());
    }
}
