//! Deterministic fault injection for the FL transport layer (DESIGN.md
//! §4d).
//!
//! A [`FaultPlan`] describes the *rates* of three client-side transport
//! faults — dropout, stragglers and malformed payloads — and resolves, for
//! any `(seed, round, client)` triple, which fault (if any) strikes that
//! client in that round. The resolution is a **pure function** of the
//! triple via the same SplitMix-style [`sub_seed`] mixing every other
//! random stream in the simulator uses (stream 11), so fault schedules
//! are bitwise deterministic, thread-count invariant, and — crucially for
//! checkpoint/resume — recomputable from the config alone: a resumed run
//! re-derives exactly the faults the interrupted run would have drawn.
//!
//! The plan only *labels* clients; applying the fault (withholding,
//! delaying or corrupting the payload) and degrading gracefully on the
//! server side is the simulator's job (`sim.rs`).

use serde::{Deserialize, Serialize};

/// The seed-stream registry: every independent random stream derived
/// from the master seed via [`sub_seed`] is named here, and **only**
/// here (DESIGN.md §4d). fabcheck's `seed-stream-registry` rule rejects
/// `sub_seed` call sites whose stream argument is a bare literal or a
/// constant declared anywhere else, and rejects two constants in this
/// module sharing an id — so a stream collision (two "independent" RNGs
/// drawing correlated values) is a compile-adjacent error, not a silent
/// statistics bug.
pub mod streams {
    /// Training-set synthesis (`Dataset::synthesize_split`, train half).
    pub const TRAIN_DATA: u64 = 1;
    /// Held-out test-set synthesis (same task spec, independent draw).
    pub const TEST_DATA: u64 = 2;
    /// Dirichlet non-IID shard assignment over the training set.
    pub const PARTITION: u64 = 3;
    /// Uniform choice of the adversary-controlled client subset.
    pub const MALICIOUS_SET: u64 = 4;
    /// Global model parameter initialisation.
    pub const MODEL_INIT: u64 = 5;
    /// Per-round client-sampling shuffle.
    pub const CLIENT_SAMPLING: u64 = 6;
    /// Per-(round, client) benign local-training RNG.
    pub const CLIENT_TRAIN: u64 = 7;
    /// Per-round adversarial update crafting.
    pub const ATTACK: u64 = 8;
    /// FLTrust server root-dataset synthesis.
    pub const FLTRUST_ROOT: u64 = 9;
    /// FLTrust server-side root-update training RNG.
    pub const FLTRUST_SERVER: u64 = 10;
    /// Transport fault plan: dropout/straggler/malformed resolution and
    /// payload corruption (shared by [`super::FaultPlan::fault_for`] and
    /// `sim.rs`, which must draw the *same* word per (round, client)).
    pub const FAULTS: u64 = 11;
}

/// SplitMix-style mixing for independent deterministic sub-streams of one
/// master seed. Every RNG in the simulator is seeded through this
/// function; it lives here (rather than `sim.rs`) so the fault plan and
/// the simulator provably share one derivation scheme.
pub(crate) fn sub_seed(master: u64, stream: u64, a: u64, b: u64) -> u64 {
    let mut x = master
        ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ a.wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ b.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// What happens to an update that misses the round deadline.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StragglerPolicy {
    /// The server ignores late updates entirely.
    #[default]
    Drop,
    /// The update is delivered *next* round with its aggregation weight
    /// multiplied by `discount_milli / 1000` (staleness discount).
    /// Milli-units keep the policy `Eq`-able for result caching, like
    /// `DefenseKind::NormBound`.
    Stale {
        /// Staleness discount in milli-units (500 = weight halved).
        discount_milli: u32,
    },
}

impl StragglerPolicy {
    /// The multiplicative weight discount applied to stale deliveries
    /// (1.0 under [`StragglerPolicy::Drop`], where nothing is delivered).
    pub fn discount(&self) -> f32 {
        match self {
            StragglerPolicy::Drop => 1.0,
            StragglerPolicy::Stale { discount_milli } => *discount_milli as f32 / 1000.0,
        }
    }
}

/// How a malformed payload is corrupted in transit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MalformedKind {
    /// NaN and ∞ planted at salt-chosen coordinates.
    NonFinite,
    /// Vector truncated to half its length.
    Truncated,
    /// Vector padded past its expected length.
    Overlong,
    /// Every coordinate zeroed (a dead buffer).
    Zeroed,
}

/// The fault assigned to one `(round, client)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientFault {
    /// The update is never submitted.
    Dropout,
    /// The update misses the deadline; see [`StragglerPolicy`].
    Straggler,
    /// The payload arrives corrupted.
    Malformed(MalformedKind),
}

fn is_zero_f32(v: &f32) -> bool {
    *v == 0.0
}

fn is_drop(p: &StragglerPolicy) -> bool {
    *p == StragglerPolicy::Drop
}

/// Deterministic transport-fault rates for one experiment. The default
/// plan (all rates zero) is inactive: the simulator takes the exact
/// fault-free code path and configs serialize without any fault fields,
/// so result-cache keys of existing experiments are unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Per-client per-round probability of dropout.
    #[serde(default, skip_serializing_if = "is_zero_f32")]
    pub dropout: f32,
    /// Per-client per-round probability of straggling.
    #[serde(default, skip_serializing_if = "is_zero_f32")]
    pub straggler: f32,
    /// Per-client per-round probability of a malformed payload.
    #[serde(default, skip_serializing_if = "is_zero_f32")]
    pub malformed: f32,
    /// What happens to straggling updates.
    #[serde(default, skip_serializing_if = "is_drop")]
    pub straggler_policy: StragglerPolicy,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            dropout: 0.0,
            straggler: 0.0,
            malformed: 0.0,
            straggler_policy: StragglerPolicy::Drop,
        }
    }
}

impl FaultPlan {
    /// A plan injecting only dropout.
    pub fn dropout_only(rate: f32) -> FaultPlan {
        FaultPlan {
            dropout: rate,
            ..FaultPlan::default()
        }
    }

    /// Whether any fault can ever fire. Inactive plans make the simulator
    /// take the exact fault-free code path of a plan-less config.
    pub fn is_active(&self) -> bool {
        self.dropout > 0.0 || self.straggler > 0.0 || self.malformed > 0.0
    }

    /// Serde helper: `true` for the all-zero plan (skipped when
    /// serializing so cache keys stay stable).
    pub fn is_inactive(plan: &FaultPlan) -> bool {
        !plan.is_active()
    }

    /// Validates the rates.
    ///
    /// # Errors
    ///
    /// Returns a message describing the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        for (name, r) in [
            ("dropout", self.dropout),
            ("straggler", self.straggler),
            ("malformed", self.malformed),
        ] {
            if !(0.0..=1.0).contains(&r) {
                return Err(format!("fault rate `{name}` {r} must be in [0, 1]"));
            }
        }
        let total = self.dropout as f64 + self.straggler as f64 + self.malformed as f64;
        if total > 1.0 {
            return Err(format!("fault rates sum to {total} > 1"));
        }
        if let StragglerPolicy::Stale { discount_milli } = self.straggler_policy {
            if discount_milli > 1000 {
                return Err("staleness discount must be <= 1000 milli".into());
            }
        }
        Ok(())
    }

    /// Resolves the fault striking `client` in `round`, or `None`. A pure
    /// function of `(seed, round, client)`: one mixed word supplies both
    /// the uniform variate (top 53 bits) deciding the mutually exclusive
    /// fault bands `[0, dropout) → [.., +straggler) → [.., +malformed)`
    /// and the malformed sub-kind (bottom 2 bits).
    pub fn fault_for(&self, seed: u64, round: u64, client: u64) -> Option<ClientFault> {
        if !self.is_active() {
            return None;
        }
        let x = sub_seed(seed, streams::FAULTS, round, client);
        let u = (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let mut edge = self.dropout as f64;
        if u < edge {
            return Some(ClientFault::Dropout);
        }
        edge += self.straggler as f64;
        if u < edge {
            return Some(ClientFault::Straggler);
        }
        edge += self.malformed as f64;
        if u < edge {
            let kind = match x & 3 {
                0 => MalformedKind::NonFinite,
                1 => MalformedKind::Truncated,
                2 => MalformedKind::Overlong,
                _ => MalformedKind::Zeroed,
            };
            return Some(ClientFault::Malformed(kind));
        }
        None
    }
}

/// Applies a malformed-payload corruption in place. `salt` picks the
/// poisoned coordinates (pass the client's fault word so corruption is as
/// deterministic as the schedule).
pub fn corrupt_payload(kind: MalformedKind, payload: &mut Vec<f32>, salt: u64) {
    if payload.is_empty() {
        return;
    }
    match kind {
        MalformedKind::NonFinite => {
            let n = payload.len();
            payload[salt as usize % n] = f32::NAN;
            payload[(salt >> 17) as usize % n] = f32::INFINITY;
        }
        MalformedKind::Truncated => {
            let n = payload.len();
            payload.truncate(n / 2);
        }
        MalformedKind::Overlong => {
            let n = payload.len();
            payload.resize(n + n / 4 + 1, 0.0);
        }
        MalformedKind::Zeroed => payload.fill(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FaultPlan {
        FaultPlan {
            dropout: 0.2,
            straggler: 0.1,
            malformed: 0.1,
            straggler_policy: StragglerPolicy::Stale {
                discount_milli: 500,
            },
        }
    }

    #[test]
    fn inactive_plan_never_faults() {
        let p = FaultPlan::default();
        assert!(!p.is_active());
        for c in 0..100 {
            assert_eq!(p.fault_for(7, 3, c), None);
        }
    }

    #[test]
    fn rates_are_approximately_respected() {
        let p = plan();
        let mut counts = [0usize; 4]; // none, dropout, straggler, malformed
        let n = 20_000u64;
        for c in 0..n {
            match p.fault_for(42, 0, c) {
                None => counts[0] += 1,
                Some(ClientFault::Dropout) => counts[1] += 1,
                Some(ClientFault::Straggler) => counts[2] += 1,
                Some(ClientFault::Malformed(_)) => counts[3] += 1,
            }
        }
        let frac = |k: usize| counts[k] as f64 / n as f64;
        assert!((frac(1) - 0.2).abs() < 0.02, "dropout {}", frac(1));
        assert!((frac(2) - 0.1).abs() < 0.02, "straggler {}", frac(2));
        assert!((frac(3) - 0.1).abs() < 0.02, "malformed {}", frac(3));
    }

    #[test]
    fn schedule_is_a_pure_function_of_the_triple() {
        let p = plan();
        for round in 0..8 {
            for client in 0..64 {
                let a = p.fault_for(9, round, client);
                let b = p.fault_for(9, round, client);
                assert_eq!(a, b);
            }
        }
        // Different seeds give different schedules somewhere.
        let diff = (0..64).any(|c| p.fault_for(1, 0, c) != p.fault_for(2, 0, c));
        assert!(diff);
    }

    #[test]
    fn validation_rejects_bad_rates() {
        let mut p = plan();
        p.dropout = 1.5;
        assert!(p.validate().is_err());
        let mut p = plan();
        p.dropout = 0.6;
        p.straggler = 0.6;
        assert!(p.validate().is_err(), "rates summing past 1 are rejected");
        let mut p = plan();
        p.straggler_policy = StragglerPolicy::Stale {
            discount_milli: 2000,
        };
        assert!(p.validate().is_err());
        assert!(plan().validate().is_ok());
        assert!(FaultPlan::default().validate().is_ok());
    }

    #[test]
    fn corruption_kinds_do_what_they_say() {
        let base = vec![1.0f32; 8];
        let mut p = base.clone();
        corrupt_payload(MalformedKind::NonFinite, &mut p, 0xABCD);
        assert!(p.iter().any(|v| !v.is_finite()));
        assert_eq!(p.len(), 8);

        let mut p = base.clone();
        corrupt_payload(MalformedKind::Truncated, &mut p, 0);
        assert_eq!(p.len(), 4);

        let mut p = base.clone();
        corrupt_payload(MalformedKind::Overlong, &mut p, 0);
        assert!(p.len() > 8);

        let mut p = base.clone();
        corrupt_payload(MalformedKind::Zeroed, &mut p, 0);
        assert!(p.iter().all(|&v| v == 0.0));

        let mut empty: Vec<f32> = Vec::new();
        corrupt_payload(MalformedKind::NonFinite, &mut empty, 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn plan_serde_roundtrip_and_inactive_skips_fields() {
        let p = plan();
        let s = serde_json::to_string(&p).unwrap();
        let back: FaultPlan = serde_json::from_str(&s).unwrap();
        assert_eq!(p, back);
        // The inactive default serializes to an empty object, keeping
        // result-cache keys of fault-free configs stable.
        let s = serde_json::to_string(&FaultPlan::default()).unwrap();
        assert_eq!(s, "{}");
        let back: FaultPlan = serde_json::from_str("{}").unwrap();
        assert_eq!(back, FaultPlan::default());
    }

    #[test]
    fn discount_helper() {
        assert_eq!(StragglerPolicy::Drop.discount(), 1.0);
        assert_eq!(
            StragglerPolicy::Stale {
                discount_milli: 250
            }
            .discount(),
            0.25
        );
    }
}
