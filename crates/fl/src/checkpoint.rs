//! Crash-safe checkpoint/resume for FL simulations (DESIGN.md §4d).
//!
//! Every K rounds the simulator serializes its complete cross-round state
//! — the global model, the previous global model, the per-round records so
//! far, pending stale deliveries and the adversary's cross-round state —
//! to one JSON file per config fingerprint. Everything *else* a round
//! reads is a pure function of the config (datasets, partition, malicious
//! set, per-round RNG streams), so a resumed run replays the remaining
//! rounds bitwise identically to an uninterrupted one (the resume-
//! equivalence proptest in `tests/robustness.rs` pins this).
//!
//! Model parameters are stored as `f32::to_bits` words, not floats: the
//! JSON layer formats non-finite floats as `null`, and bit-exactness is
//! the whole point. Writes are atomic (temp file + rename) and the
//! previous checkpoint is retained as `*.prev.json`, so a crash mid-write
//! can never leave the *only* copy torn. Loading verifies a version tag,
//! the config fingerprint and an FNV-1a checksum; a corrupt latest file
//! falls back to the previous one, then to a fresh start from round 0.

use crate::metrics::RoundRecord;
use crate::{FlConfig, FlError};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Bump when the checkpoint schema changes; mismatched files are ignored
/// (the run restarts from round 0) rather than misread.
///
/// v2 added the mid-round in-flight submission log (`inflight` /
/// `inflight_meta`) the serve shell uses as a write-ahead log for kill -9
/// recovery inside a round.
pub const CHECKPOINT_VERSION: u32 = 2;

/// Where and how often [`crate::simulate_with`] checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointSpec {
    /// Directory holding one checkpoint file per config fingerprint.
    pub dir: PathBuf,
    /// Save every `every` completed rounds (0 = only at completion). The
    /// final round is always saved so finished runs resume instantly.
    pub every: usize,
}

impl CheckpointSpec {
    /// Creates a spec.
    pub fn new(dir: impl Into<PathBuf>, every: usize) -> CheckpointSpec {
        CheckpointSpec {
            dir: dir.into(),
            every,
        }
    }

    /// Whether a checkpoint is due after `completed` of `total` rounds.
    pub(crate) fn due(&self, completed: usize, total: usize) -> bool {
        completed == total || (self.every > 0 && completed.is_multiple_of(self.every))
    }
}

/// A straggler update held over for delivery in the next round.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PendingStale {
    /// Submitting client id.
    pub client: usize,
    /// Whether the submission is the adversary's.
    pub malicious: bool,
    /// Aggregation weight (bits; the staleness discount is applied at
    /// delivery, from the plan, so the stored entry is the raw submission).
    pub weight_bits: u32,
    /// Payload (bits).
    pub payload_bits: Vec<u32>,
}

/// One *accepted, validated* submission of the round in progress — the
/// serve shell's write-ahead log entry. `seq` is the submission's position
/// in the round's canonical staging order ([`crate::round::StagedRound`]),
/// which is the sort/dedup key that makes the recovered log independent of
/// network arrival order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InflightSubmission {
    /// Canonical staging sequence number within the round.
    pub seq: u32,
    /// Submitting client id.
    pub client: usize,
    /// Whether the submission is the adversary's.
    pub malicious: bool,
    /// Aggregation weight (bits).
    pub weight_bits: u32,
    /// Payload (bits).
    pub payload_bits: Vec<u32>,
}

/// One simulation's complete resumable state after `next_round` rounds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Schema version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Canonical serialization of the config *minus the round budget* —
    /// every per-round stream keys on the round index alone, so a run
    /// checkpointed under `rounds = r` is a bitwise prefix of the same
    /// config with a larger budget (this is what makes kill/resume
    /// testable, and lets a grid extend `rounds` without recomputing).
    pub fingerprint: String,
    /// The next round to execute (`rounds.len()` rounds are recorded).
    pub next_round: usize,
    /// Global model parameters (bits).
    pub global_bits: Vec<u32>,
    /// Previous global model (bits), if any round aggregated yet.
    pub prev_global_bits: Option<Vec<u32>>,
    /// Per-round records completed so far.
    pub rounds: Vec<RoundRecord>,
    /// Stale updates awaiting delivery in `next_round`.
    pub pending: Vec<PendingStale>,
    /// Opaque adversary state (`Attack::checkpoint_state`).
    pub attack_state: Vec<u64>,
    /// Validated submissions of the round in progress (`next_round`),
    /// sorted by `seq` — the serve shell's write-ahead log. The batch
    /// simulator always checkpoints at round boundaries, so it leaves
    /// this empty (and the field is omitted from its JSON).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub inflight: Vec<InflightSubmission>,
    /// Mid-round accounting alongside `inflight`: empty, or the five
    /// words `[expected, offline, diverged, silent, deadline_fired]` from
    /// the round's META announcement and deadline state.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub inflight_meta: Vec<u64>,
    /// FNV-1a over every field above; detects torn/corrupt files that
    /// still parse as JSON.
    pub checksum: u64,
}

/// Incremental FNV-1a (64-bit).
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xCBF2_9CE4_8422_2325)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
    }

    fn bytes(&mut self, s: &[u8]) {
        for &b in s {
            self.byte(b);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
}

impl Checkpoint {
    /// The checksum of every payload field, in a fixed field order.
    pub fn body_checksum(&self) -> u64 {
        let mut h = Fnv::new();
        h.u64(self.version as u64);
        h.bytes(self.fingerprint.as_bytes());
        h.u64(self.next_round as u64);
        h.u64(self.global_bits.len() as u64);
        for &b in &self.global_bits {
            h.u64(b as u64);
        }
        match &self.prev_global_bits {
            None => h.u64(0),
            Some(bits) => {
                h.u64(1 + bits.len() as u64);
                for &b in bits {
                    h.u64(b as u64);
                }
            }
        }
        h.u64(self.rounds.len() as u64);
        for r in &self.rounds {
            h.u64(r.round as u64);
            h.u64(r.accuracy.to_bits() as u64);
            for c in [
                r.malicious_selected,
                r.malicious_passed,
                r.delivered,
                r.stale,
                r.dropped,
                r.straggling,
                r.quarantined,
                r.stale_quarantined,
                r.offline,
                r.diverged,
                r.silent,
            ] {
                h.u64(c as u64);
            }
            h.byte(r.selection_available as u8);
            h.byte(r.skipped as u8);
        }
        h.u64(self.pending.len() as u64);
        for p in &self.pending {
            h.u64(p.client as u64);
            h.byte(p.malicious as u8);
            h.u64(p.weight_bits as u64);
            h.u64(p.payload_bits.len() as u64);
            for &b in &p.payload_bits {
                h.u64(b as u64);
            }
        }
        h.u64(self.attack_state.len() as u64);
        for &w in &self.attack_state {
            h.u64(w);
        }
        h.u64(self.inflight.len() as u64);
        for s in &self.inflight {
            h.u64(s.seq as u64);
            h.u64(s.client as u64);
            h.byte(s.malicious as u8);
            h.u64(s.weight_bits as u64);
            h.u64(s.payload_bits.len() as u64);
            for &b in &s.payload_bits {
                h.u64(b as u64);
            }
        }
        h.u64(self.inflight_meta.len() as u64);
        for &w in &self.inflight_meta {
            h.u64(w);
        }
        h.0
    }

    /// Stamps `checksum` from the current payload fields.
    pub fn seal(mut self) -> Checkpoint {
        self.checksum = self.body_checksum();
        self
    }
}

/// The canonical config fingerprint: the config's JSON with the round
/// budget pinned to zero (see [`Checkpoint::fingerprint`]).
pub fn fingerprint(cfg: &FlConfig) -> String {
    let mut canon = cfg.clone();
    canon.rounds = 0;
    serde_json::to_string(&canon).expect("config serializes")
}

/// The checkpoint path for a fingerprint: `ckpt-<fnv64(fingerprint)>.json`.
pub fn path_for(dir: &Path, fp: &str) -> PathBuf {
    let mut h = Fnv::new();
    h.bytes(fp.as_bytes());
    dir.join(format!("ckpt-{:016x}.json", h.0))
}

fn prev_path(path: &Path) -> PathBuf {
    path.with_extension("prev.json")
}

/// Atomically writes `ckpt`, keeping the previously current file as
/// `*.prev.json`. The data path is `write temp → rename current to prev →
/// rename temp to current`: at every instant an intact checkpoint exists
/// on disk under one of the two names.
///
/// # Errors
///
/// Returns [`FlError::Checkpoint`] on any filesystem failure.
pub fn save(dir: &Path, ckpt: &Checkpoint) -> Result<(), FlError> {
    let io = |what: &str, e: std::io::Error| FlError::Checkpoint(format!("{what}: {e}"));
    std::fs::create_dir_all(dir).map_err(|e| io("create checkpoint dir", e))?;
    let path = path_for(dir, &ckpt.fingerprint);
    let tmp = path.with_extension("json.tmp");
    let json = serde_json::to_string(ckpt).expect("checkpoint serializes");
    std::fs::write(&tmp, json).map_err(|e| io("write checkpoint temp", e))?;
    if path.exists() {
        std::fs::rename(&path, prev_path(&path)).map_err(|e| io("rotate checkpoint", e))?;
    }
    std::fs::rename(&tmp, &path).map_err(|e| io("publish checkpoint", e))
}

fn try_load(path: &Path, fp: &str, max_rounds: usize) -> Option<Checkpoint> {
    let text = std::fs::read_to_string(path).ok()?;
    // A zero-length file (e.g. the rename landed but the data blocks of a
    // crashed write never did, on filesystems without write barriers) is
    // corrupt, exactly like a torn one: degrade to `prev`, then round 0.
    if text.is_empty() {
        return None;
    }
    let c: Checkpoint = serde_json::from_str(&text).ok()?;
    let intact = c.version == CHECKPOINT_VERSION
        && c.fingerprint == fp
        && c.checksum == c.body_checksum()
        && c.rounds.len() == c.next_round
        && c.next_round <= max_rounds
        && !c.global_bits.is_empty();
    intact.then_some(c)
}

/// Loads the most recent intact checkpoint for `cfg`: the current file if
/// it verifies, else the `*.prev.json` fallback, else `None` (start from
/// round 0). Never errors — a corrupt checkpoint degrades to recomputing,
/// not to garbage state.
pub fn load(dir: &Path, cfg: &FlConfig) -> Option<Checkpoint> {
    let fp = fingerprint(cfg);
    let path = path_for(dir, &fp);
    try_load(&path, &fp, cfg.rounds).or_else(|| try_load(&prev_path(&path), &fp, cfg.rounds))
}

/// Bit-packs a float slice for checkpoint storage.
pub fn to_bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Unpacks checkpoint bit storage back to floats.
pub fn from_bits(v: &[u32]) -> Vec<f32> {
    v.iter().map(|&x| f32::from_bits(x)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaskKind;

    fn cfg() -> FlConfig {
        FlConfig::builder(TaskKind::Fashion)
            .rounds(4)
            .n_clients(10)
            .clients_per_round(5)
            .train_size(100)
            .test_size(40)
            .seed(3)
            .build()
    }

    fn ckpt(fp: String) -> Checkpoint {
        Checkpoint {
            version: CHECKPOINT_VERSION,
            fingerprint: fp,
            next_round: 2,
            global_bits: vec![1.5f32.to_bits(), f32::NAN.to_bits()],
            prev_global_bits: Some(vec![0.25f32.to_bits(), 0]),
            rounds: vec![
                RoundRecord {
                    round: 0,
                    accuracy: 0.125,
                    ..RoundRecord::default()
                },
                RoundRecord {
                    round: 1,
                    accuracy: 0.25,
                    ..RoundRecord::default()
                },
            ],
            pending: vec![PendingStale {
                client: 7,
                malicious: true,
                weight_bits: 3.0f32.to_bits(),
                payload_bits: vec![9, 8],
            }],
            attack_state: vec![1, 4],
            inflight: vec![InflightSubmission {
                seq: 2,
                client: 3,
                malicious: false,
                weight_bits: 5.0f32.to_bits(),
                payload_bits: vec![11, 12],
            }],
            inflight_meta: vec![4, 0, 0, 1, 0],
            checksum: 0,
        }
        .seal()
    }

    #[test]
    fn fingerprint_ignores_round_budget() {
        let a = cfg();
        let mut b = cfg();
        b.rounds = 99;
        assert_eq!(fingerprint(&a), fingerprint(&b));
        let mut c = cfg();
        c.seed = 4;
        assert_ne!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn roundtrip_preserves_non_finite_params_bitwise() {
        let dir = crate::test_dir("ckpt-roundtrip");
        let c = ckpt(fingerprint(&cfg()));
        save(&dir, &c).unwrap();
        let back = load(&dir, &cfg()).expect("intact checkpoint loads");
        assert_eq!(back, c);
        assert!(f32::from_bits(back.global_bits[1]).is_nan());
        // No temp litter after a successful save.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_current_falls_back_to_prev_then_none() {
        let dir = crate::test_dir("ckpt-fallback");
        let fp = fingerprint(&cfg());
        let mut first = ckpt(fp.clone());
        first.next_round = 1;
        first.rounds.truncate(1);
        let first = first.seal();
        let second = ckpt(fp.clone());
        save(&dir, &first).unwrap();
        save(&dir, &second).unwrap();
        assert_eq!(load(&dir, &cfg()).unwrap().next_round, 2);

        // Truncate the current file: detected, prev wins.
        let path = path_for(&dir, &fp);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert_eq!(load(&dir, &cfg()).unwrap(), first);

        // Flip a payload digit so the JSON still parses but the checksum
        // does not match: also rejected.
        let prev = prev_path(&path);
        let text = std::fs::read_to_string(&prev).unwrap();
        let tampered = text.replace("\"next_round\":1", "\"next_round\":0");
        assert_ne!(text, tampered);
        std::fs::write(&prev, tampered).unwrap();
        assert!(load(&dir, &cfg()).is_none(), "checksum catches tampering");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_fingerprint_version_or_overlong_are_rejected() {
        let dir = crate::test_dir("ckpt-reject");
        let fp = fingerprint(&cfg());
        save(&dir, &ckpt(fp.clone()).seal()).unwrap();
        let mut other = cfg();
        other.seed = 99;
        assert!(load(&dir, &other).is_none(), "fingerprint mismatch");
        let mut short = cfg();
        short.rounds = 1;
        assert!(
            load(&dir, &short).is_none(),
            "a checkpoint past the round budget is unusable"
        );

        let mut c = ckpt(fp);
        c.version = CHECKPOINT_VERSION + 1;
        let c = c.seal();
        save(&dir, &c).unwrap();
        // Both slots now hold the bad version (current) and the good one
        // (prev): fallback still works.
        assert_eq!(load(&dir, &cfg()).unwrap().version, CHECKPOINT_VERSION);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checksum_covers_every_field() {
        let base = ckpt(fingerprint(&cfg()));
        let mut c = base.clone();
        c.attack_state[0] = 2;
        assert_ne!(c.body_checksum(), base.checksum);
        let mut c = base.clone();
        c.rounds[0].quarantined = 5;
        assert_ne!(c.body_checksum(), base.checksum);
        let mut c = base.clone();
        c.pending[0].malicious = false;
        assert_ne!(c.body_checksum(), base.checksum);
        let mut c = base.clone();
        c.inflight[0].seq = 3;
        assert_ne!(c.body_checksum(), base.checksum);
        let mut c = base.clone();
        c.inflight[0].payload_bits[1] = 99;
        assert_ne!(c.body_checksum(), base.checksum);
        let mut c = base.clone();
        c.inflight_meta[0] = 5;
        assert_ne!(c.body_checksum(), base.checksum);
        let mut c = base.clone();
        c.inflight.clear();
        assert_ne!(c.body_checksum(), base.checksum);
    }

    #[test]
    fn zero_length_current_degrades_to_prev_then_none() {
        let dir = crate::test_dir("ckpt-zero");
        let fp = fingerprint(&cfg());
        let mut first = ckpt(fp.clone());
        first.next_round = 1;
        first.rounds.truncate(1);
        let first = first.seal();
        save(&dir, &first).unwrap();
        save(&dir, &ckpt(fp.clone())).unwrap();

        let path = path_for(&dir, &fp);
        std::fs::write(&path, "").unwrap();
        assert_eq!(load(&dir, &cfg()), Some(first), "prev wins");

        std::fs::write(prev_path(&path), "").unwrap();
        assert_eq!(load(&dir, &cfg()), None, "both empty: fresh start");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Crash-at-any-byte robustness: truncate the current checkpoint file
    /// at *every* prefix length (including zero). Loading must never
    /// panic, never return garbage — every truncation either fails
    /// verification (falling back to the intact prev) or, at the full
    /// length, loads the real checkpoint.
    #[test]
    fn truncation_at_every_byte_offset_degrades_cleanly() {
        let dir = crate::test_dir("ckpt-truncate");
        let fp = fingerprint(&cfg());
        let mut prev = ckpt(fp.clone());
        prev.next_round = 1;
        prev.rounds.truncate(1);
        let prev = prev.seal();
        let current = ckpt(fp.clone());
        save(&dir, &prev).unwrap();
        save(&dir, &current).unwrap();

        let path = path_for(&dir, &fp);
        let full = std::fs::read(&path).unwrap();
        for cut in 0..=full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let got = load(&dir, &cfg()).expect("prev checkpoint stays intact");
            if cut == full.len() {
                assert_eq!(got, current);
            } else {
                assert_eq!(got, prev, "truncation at byte {cut} must fall back");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_packing_roundtrips() {
        let v = vec![0.0, -0.0, 1.5, f32::NAN, f32::NEG_INFINITY];
        let back = from_bits(&to_bits(&v));
        for (a, b) in v.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
