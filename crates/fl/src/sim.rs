//! The federated-learning simulation loop (paper Sec. II-A, V-A).

use crate::metrics::{RoundRecord, RunResult};
use crate::{FlConfig, FlError};
use fabflip_agg::{AggError, Selection};
use fabflip_attacks::{AttackContext, TaskInfo};
use fabflip_data::{dirichlet_partition, Dataset};
use fabflip_nn::losses::{accuracy, softmax_cross_entropy_hard};
use fabflip_nn::Sequential;
use fabflip_tensor::par;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Fixed task seed: all runs (clean baseline and attacked) share the same
/// class prototypes, so `acc_natk` and `acc_max` are comparable.
const TASK_SEED: u64 = 0xDA7A_5EED;

/// Result of one benign client's local round: `None` when the client is
/// malicious or offline, otherwise its flat update and sample weight.
type ClientOutcome = Result<Option<(Vec<f32>, f32)>, FlError>;

fn sub_seed(master: u64, stream: u64, a: u64, b: u64) -> u64 {
    // SplitMix-style mixing for independent deterministic streams.
    let mut x = master
        ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ a.wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ b.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Evaluates `model` on `test`, batching to bound peak memory.
///
/// # Errors
///
/// Propagates forward-pass failures.
pub fn evaluate_model(
    model: &mut Sequential,
    test: &Dataset,
    batch: usize,
) -> Result<f32, FlError> {
    let n = test.len();
    if n == 0 {
        return Ok(0.0);
    }
    let mut correct_weighted = 0.0f32;
    let idx: Vec<usize> = (0..n).collect();
    for chunk in idx.chunks(batch.max(1)) {
        let b = test.gather(chunk);
        let logits = model.forward(&b.images)?;
        correct_weighted += accuracy(&logits, &b.labels) * chunk.len() as f32;
    }
    Ok(correct_weighted / n as f32)
}

/// Trains one benign client: start at `global`, run `local_epochs` of
/// mini-batch SGD on the client's shard, return the flat update.
fn train_benign_client(
    cfg: &FlConfig,
    train: &Dataset,
    shard: &[usize],
    global: &[f32],
    rng: &mut StdRng,
) -> Result<Vec<f32>, FlError> {
    let mut model = cfg.task.build_model(rng);
    model.set_flat_params(global)?;
    for _ in 0..cfg.local_epochs {
        for b in train.shuffled_batches(shard, cfg.batch, rng) {
            model.train_step(&b.images, cfg.lr, |logits| {
                softmax_cross_entropy_hard(logits, &b.labels)
            })?;
        }
    }
    Ok(model.flat_params())
}

/// Runs one full FL simulation described by `cfg`.
///
/// Per round: sample `K` clients uniformly; benign clients train locally
/// for one epoch; the single adversarial party crafts **one** malicious
/// update which every selected malicious client submits (Sec. III-A); the
/// server aggregates under the configured defense; the global model is
/// evaluated on the held-out test set. Rounds whose aggregation fails a
/// robustness precondition (too few finite updates) leave the global model
/// unchanged, like a round with no quorum.
///
/// # Errors
///
/// Returns [`FlError`] on configuration, partition, training or attack
/// failures. Aggregation "too few updates" is tolerated per round; all
/// other aggregation errors abort.
pub fn simulate(cfg: &FlConfig) -> Result<RunResult, FlError> {
    simulate_observed(cfg, |_| {})
}

/// Like [`simulate`], invoking `observer` with each round's record as soon
/// as it is complete — for live progress display and streaming dashboards.
///
/// # Errors
///
/// Same conditions as [`simulate`].
pub fn simulate_observed<F: FnMut(&RoundRecord)>(
    cfg: &FlConfig,
    mut observer: F,
) -> Result<RunResult, FlError> {
    cfg.validate().map_err(FlError::BadConfig)?;
    let spec = cfg.task.spec();
    let train = Dataset::synthesize_split(
        &spec,
        cfg.train_size,
        TASK_SEED,
        sub_seed(cfg.seed, 1, 0, 0),
    );
    let test =
        Dataset::synthesize_split(&spec, cfg.test_size, TASK_SEED, sub_seed(cfg.seed, 2, 0, 0));
    let shards = dirichlet_partition(&train, cfg.n_clients, cfg.beta, sub_seed(cfg.seed, 3, 0, 0))?;

    // Adversary-controlled clients: a uniformly random subset, kept as a
    // sorted vector (membership via binary search) so every iteration over
    // it is deterministic — a HashSet here leaks hash order into the
    // adversary's data pool (fabcheck: nondeterministic-collection).
    let mut setup_rng = StdRng::seed_from_u64(sub_seed(cfg.seed, 4, 0, 0));
    let mut ids: Vec<usize> = (0..cfg.n_clients).collect();
    ids.shuffle(&mut setup_rng);
    let mut malicious: Vec<usize> = ids[..cfg.n_malicious()].to_vec();
    malicious.sort_unstable();
    let is_malicious = |c: usize| malicious.binary_search(&c).is_ok();

    // The Fig. 7 real-data adversary pools its clients' Dirichlet shards.
    let adversary_data = if cfg.attack.needs_adversary_data() {
        let mut pool: Vec<usize> = malicious
            .iter()
            .flat_map(|&c| shards[c].iter().copied())
            .collect();
        pool.sort_unstable();
        let b = train.gather(&pool);
        Some(Dataset::new(b.images, b.labels, train.num_classes()))
    } else {
        None
    };
    let mut attack = cfg.attack.build(adversary_data);

    let task_info = TaskInfo {
        channels: spec.channels,
        height: spec.height,
        width: spec.width,
        num_classes: spec.num_classes,
        synth_set_size: cfg.synth_set_size,
        local_lr: cfg.lr,
        local_batch: cfg.batch,
        local_epochs: cfg.local_epochs,
    };
    let defense = cfg.defense.build()?;
    // FLTrust extension: the server's clean root dataset (same task,
    // independent sample stream).
    let fltrust_root = cfg
        .fltrust_root_size
        .map(|n| Dataset::synthesize_split(&spec, n, TASK_SEED, sub_seed(cfg.seed, 9, 0, 0)));
    let build_model = {
        let task = cfg.task;
        move |rng: &mut StdRng| task.build_model(rng)
    };

    let mut init_rng = StdRng::seed_from_u64(sub_seed(cfg.seed, 5, 0, 0));
    let mut global_model = cfg.task.build_model(&mut init_rng);
    let mut global = global_model.flat_params();
    let mut prev_global: Option<Vec<f32>> = None;

    let mut rounds = Vec::with_capacity(cfg.rounds);
    for round in 0..cfg.rounds {
        let mut round_rng = StdRng::seed_from_u64(sub_seed(cfg.seed, 6, round as u64, 0));
        let mut pool: Vec<usize> = (0..cfg.n_clients).collect();
        pool.shuffle(&mut round_rng);
        let selected = &pool[..cfg.clients_per_round];

        // Benign local training. Every client already draws from an
        // independent RNG stream keyed by (seed, round, client), so clients
        // train in parallel and their updates are merged in selection order
        // — the transcript is bitwise identical to the sequential loop (see
        // the determinism contract in `fabflip_tensor::par`).
        let malicious_selected = selected.iter().filter(|&&c| is_malicious(c)).count();
        let train_ref = &train;
        let shards_ref = &shards;
        let global_ref = &global;
        let is_malicious_ref = &is_malicious;
        let outcomes: Vec<ClientOutcome> = par::map_collect(selected.len(), |s| {
            let client = selected[s];
            if is_malicious_ref(client) {
                return Ok(None);
            }
            let shard = &shards_ref[client];
            if shard.is_empty() {
                return Ok(None); // Client has no data: no update (offline).
            }
            let mut crng =
                StdRng::seed_from_u64(sub_seed(cfg.seed, 7, round as u64, client as u64));
            let w = train_benign_client(cfg, train_ref, shard, global_ref, &mut crng)?;
            if w.iter().any(|v| !v.is_finite()) {
                // Local training diverged (possible once the global model
                // is poisoned): a real client would fail to submit. Skip
                // it so non-finite values never reach attacks or defenses.
                return Ok(None);
            }
            Ok(Some((w, shard.len() as f32)))
        });
        let mut benign_updates: Vec<Vec<f32>> = Vec::new();
        let mut benign_weights: Vec<f32> = Vec::new();
        for outcome in outcomes {
            if let Some((w, weight)) = outcome? {
                benign_updates.push(w);
                benign_weights.push(weight);
            }
        }

        // Adversarial crafting: one update for all malicious clients.
        let mut updates = benign_updates.clone();
        let mut weights = benign_weights.clone();
        let mut malicious_indices: Vec<usize> = Vec::new();
        if malicious_selected > 0 {
            if let Some(attack) = attack.as_mut() {
                let empty: Vec<Vec<f32>> = Vec::new();
                let oracle: &[Vec<f32>] = if cfg.attack.uses_benign_oracle() {
                    &benign_updates
                } else {
                    &empty
                };
                let ctx = AttackContext {
                    global: &global,
                    prev_global: prev_global.as_deref(),
                    benign_updates: oracle,
                    n_selected: cfg.clients_per_round,
                    n_malicious_selected: malicious_selected,
                    task: &task_info,
                    build_model: &build_model,
                };
                let mut arng = StdRng::seed_from_u64(sub_seed(cfg.seed, 8, round as u64, 0));
                match attack.craft(&ctx, &mut arng) {
                    Ok(w_mal) => {
                        for _ in 0..malicious_selected {
                            let mut copy = w_mal.clone();
                            if cfg.sybil_noise > 0.0 {
                                // Sec. III-A: independent per-copy noise to
                                // break Sybil-similarity detection.
                                use rand::Rng;
                                for v in &mut copy {
                                    let u1: f32 = arng.gen_range(f32::EPSILON..1.0);
                                    let u2: f32 = arng.gen_range(0.0..1.0);
                                    let n = (-2.0 * u1.ln()).sqrt()
                                        * (std::f32::consts::TAU * u2).cos();
                                    *v += cfg.sybil_noise * n;
                                }
                            }
                            malicious_indices.push(updates.len());
                            updates.push(copy);
                            weights.push(cfg.synth_set_size.max(1) as f32);
                        }
                    }
                    // An oracle-dependent attack cannot act in a round whose
                    // oracle is empty or unusable: malicious clients stay
                    // silent.
                    Err(fabflip_attacks::AttackError::NeedsBenignUpdates(_)) => {}
                    Err(e) => return Err(e.into()),
                }
            }
        }

        // Server-side aggregation.
        let mut malicious_passed = 0usize;
        let mut selection_available = false;
        if !updates.is_empty() {
            let aggregation = if let Some(root) = &fltrust_root {
                // FLTrust: the server computes its own root update, then
                // trust-scores the clients against it.
                let mut srng = StdRng::seed_from_u64(sub_seed(cfg.seed, 10, round as u64, 0));
                let all: Vec<usize> = (0..root.len()).collect();
                let server_update = train_benign_client(cfg, root, &all, &global, &mut srng)?;
                fabflip_agg::fltrust_aggregate(&updates, &global, &server_update)
            } else {
                defense.aggregate_with_reference(&updates, &weights, Some(&global))
            };
            match aggregation {
                Ok(agg) => {
                    if let Selection::Chosen(ref kept) = agg.selection {
                        selection_available = true;
                        malicious_passed = kept
                            .iter()
                            .filter(|i| malicious_indices.contains(i))
                            .count();
                    }
                    prev_global = Some(global.clone());
                    global = agg.model;
                    global_model.set_flat_params(&global)?;
                }
                Err(AggError::TooFewUpdates { .. }) | Err(AggError::NoUpdates) => {
                    // No quorum this round: global model unchanged.
                }
                Err(e) => return Err(e.into()),
            }
        }

        let acc = evaluate_model(&mut global_model, &test, 100)?;
        let record = RoundRecord {
            round,
            accuracy: acc,
            // DPR denominator: malicious clients that actually submitted.
            malicious_selected: malicious_indices.len(),
            malicious_passed,
            selection_available,
        };
        observer(&record);
        rounds.push(record);
    }
    Ok(RunResult {
        rounds,
        final_model: global,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttackSpec, TaskKind};
    use fabflip_agg::DefenseKind;

    fn tiny_cfg() -> FlConfig {
        FlConfig::builder(TaskKind::Fashion)
            .rounds(3)
            .n_clients(12)
            .clients_per_round(6)
            .train_size(240)
            .test_size(80)
            .synth_set_size(6)
            .seed(5)
            .build()
    }

    #[test]
    fn clean_run_learns() {
        // At this tiny scale (20 samples/client, ~2 SGD steps per client
        // per round) learning only clears chance after a dozen-odd rounds,
        // so this test runs longer than the other sims here.
        let mut cfg = tiny_cfg();
        cfg.rounds = 16;
        let r = simulate(&cfg).unwrap();
        assert_eq!(r.rounds.len(), 16);
        // Accuracy must beat chance (10 classes).
        assert!(r.max_accuracy() > 0.15, "trace {:?}", r.accuracy_trace());
    }

    /// The parallelism/determinism contract end-to-end: a fixed-seed round
    /// transcript (accuracies and final model, bitwise) must not depend on
    /// the thread budget. Mirrors running once with `FABFLIP_THREADS=1` and
    /// once with it unset on a multi-core host.
    #[test]
    fn transcript_is_thread_count_invariant() {
        let cfg = tiny_cfg();
        let prev = fabflip_tensor::par::max_threads();
        fabflip_tensor::par::set_max_threads(1);
        let serial = simulate(&cfg).unwrap();
        fabflip_tensor::par::set_max_threads(4);
        let parallel = simulate(&cfg).unwrap();
        fabflip_tensor::par::set_max_threads(prev);
        let acc_bits = |r: &crate::RunResult| -> Vec<u32> {
            r.accuracy_trace().iter().map(|a| a.to_bits()).collect()
        };
        assert_eq!(acc_bits(&serial), acc_bits(&parallel));
        let model_bits = |r: &crate::RunResult| -> Vec<u32> {
            r.final_model.iter().map(|w| w.to_bits()).collect()
        };
        assert_eq!(model_bits(&serial), model_bits(&parallel));
    }

    #[test]
    fn simulation_is_deterministic() {
        let cfg = tiny_cfg();
        let a = simulate(&cfg).unwrap();
        let b = simulate(&cfg).unwrap();
        assert_eq!(a, b);
        let mut cfg2 = tiny_cfg();
        cfg2.seed = 6;
        let c = simulate(&cfg2).unwrap();
        assert_ne!(a.accuracy_trace(), c.accuracy_trace());
    }

    #[test]
    fn random_weight_attack_destroys_undefended_training() {
        let mut cfg = tiny_cfg();
        cfg.attack = AttackSpec::RandomWeights;
        cfg.malicious_fraction = 0.5;
        let attacked = simulate(&cfg).unwrap();
        let clean = simulate(&tiny_cfg()).unwrap();
        assert!(
            attacked.max_accuracy() <= clean.max_accuracy() + 0.05,
            "attack did not hurt: {} vs {}",
            attacked.max_accuracy(),
            clean.max_accuracy()
        );
    }

    #[test]
    fn mkrum_reports_dpr_and_median_does_not() {
        let mut cfg = tiny_cfg();
        cfg.attack = AttackSpec::RandomWeights;
        cfg.defense = DefenseKind::MKrum { f: 2 };
        let r = simulate(&cfg).unwrap();
        // Some round must have had a selection.
        assert!(r.rounds.iter().any(|x| x.selection_available));
        cfg.defense = DefenseKind::Median;
        let r = simulate(&cfg).unwrap();
        assert_eq!(r.dpr(), None);
    }

    #[test]
    fn observer_sees_every_round_in_order() {
        let cfg = tiny_cfg();
        let mut seen = Vec::new();
        let r = crate::sim::simulate_observed(&cfg, |rec| seen.push(rec.round)).unwrap();
        assert_eq!(seen, vec![0, 1, 2]);
        assert_eq!(r.rounds.len(), 3);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = tiny_cfg();
        cfg.rounds = 0;
        assert!(matches!(simulate(&cfg), Err(FlError::BadConfig(_))));
    }
}
