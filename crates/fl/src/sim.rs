//! The federated-learning simulation loop (paper Sec. II-A, V-A), plus
//! the deterministic fault-injection transport and graceful server-side
//! degradation of DESIGN.md §4d.
//!
//! Since the §4g serve split, this module is the *batch shell* around the
//! shared round engine in [`crate::round`]: [`ClientFleet`] stages every
//! submission, this loop plays the in-process fault transport over the
//! staged log, and [`ServerCore`] closes the round. The TCP server in
//! `fabflip-serve` drives the same two halves over real sockets.

use crate::checkpoint::{self, Checkpoint, CheckpointSpec, PendingStale};
use crate::faults::{corrupt_payload, streams, sub_seed, ClientFault, StragglerPolicy};
use crate::metrics::{RoundRecord, RunResult};
use crate::round::{server_accepts, ClientFleet, RoundInput, ServerCore};
use crate::{FlConfig, FlError};
use fabflip_tensor::quant;

/// A straggler submission held in memory for next-round delivery (the
/// checkpointable form is [`PendingStale`]).
struct Pending {
    client: usize,
    malicious: bool,
    weight: f32,
    payload: Vec<f32>,
}

/// Runs one full FL simulation described by `cfg`.
///
/// Per round: sample `K` clients uniformly; benign clients train locally
/// for one epoch; the single adversarial party crafts **one** malicious
/// update which every selected malicious client submits (Sec. III-A); the
/// server aggregates under the configured defense; the global model is
/// evaluated on the held-out test set. Rounds whose aggregation fails a
/// robustness precondition (too few finite updates) leave the global model
/// unchanged, like a round with no quorum.
///
/// # Errors
///
/// Returns [`FlError`] on configuration, partition, training or attack
/// failures. Aggregation "too few updates" is tolerated per round; all
/// other aggregation errors abort.
pub fn simulate(cfg: &FlConfig) -> Result<RunResult, FlError> {
    simulate_with(cfg, None, |_| {})
}

/// Like [`simulate`], invoking `observer` with each round's record as soon
/// as it is complete — for live progress display and streaming dashboards.
///
/// # Errors
///
/// Same conditions as [`simulate`].
pub fn simulate_observed<F: FnMut(&RoundRecord)>(
    cfg: &FlConfig,
    observer: F,
) -> Result<RunResult, FlError> {
    simulate_with(cfg, None, observer)
}

/// The full simulation entry point: [`simulate_observed`] plus an optional
/// crash-safe checkpoint sink.
///
/// With a [`CheckpointSpec`], the run first tries to resume from the
/// latest intact checkpoint for this config (restored rounds are **not**
/// replayed through `observer`), then saves its complete cross-round state
/// every `spec.every` completed rounds and at completion. Everything a
/// round reads beyond that state is a pure function of `(cfg, round)` —
/// per-round RNG streams, the fault schedule, datasets, the partition —
/// so a resumed run's remaining transcript is bitwise identical to an
/// uninterrupted one (pinned by the resume-equivalence proptest in
/// `tests/robustness.rs`).
///
/// # Errors
///
/// Same conditions as [`simulate`], plus [`FlError::Checkpoint`] when a
/// checkpoint cannot be *written* (corrupt checkpoints on read degrade to
/// recomputation instead).
pub fn simulate_with<F: FnMut(&RoundRecord)>(
    cfg: &FlConfig,
    ckpt: Option<&CheckpointSpec>,
    mut observer: F,
) -> Result<RunResult, FlError> {
    cfg.validate().map_err(FlError::BadConfig)?;
    let mut fleet = ClientFleet::new(cfg)?;
    let mut core = ServerCore::new(cfg)?;
    // The degradation layer (validator + dynamic quorum) switches on only
    // under a live fault plan, so fault-free configs take the exact
    // historical code path, bit for bit.
    let faults_active = cfg.faults.is_active();
    let fingerprint = ckpt.map(|_| checkpoint::fingerprint(cfg));

    let mut pending: Vec<Pending> = Vec::new();
    let mut rounds: Vec<RoundRecord> = Vec::with_capacity(cfg.rounds);
    let mut start_round = 0usize;

    if let Some(spec) = ckpt {
        if let Some(c) = checkpoint::load(&spec.dir, cfg) {
            if c.global_bits.len() == core.dim() {
                core.restore(
                    checkpoint::from_bits(&c.global_bits),
                    c.prev_global_bits.as_deref().map(checkpoint::from_bits),
                )?;
                pending = c
                    .pending
                    .iter()
                    .map(|p| Pending {
                        client: p.client,
                        malicious: p.malicious,
                        weight: f32::from_bits(p.weight_bits),
                        payload: checkpoint::from_bits(&p.payload_bits),
                    })
                    .collect();
                fleet.restore_attack_state(&c.attack_state);
                start_round = c.next_round;
                rounds = c.rounds;
            }
        }
    }

    for round in start_round..cfg.rounds {
        let round_u64 = round as u64;
        let staged_round = fleet.stage_round(round, core.global(), core.prev_global())?;
        let mut staged = staged_round.submissions;
        let mut dropped = staged_round.dropped;
        let mut straggling = 0usize;
        let mut quarantined = 0usize;
        let mut stale_quarantined = 0usize;
        let mut stale_delivered = 0usize;

        // Quantized transport (DESIGN.md §4e): every staged payload
        // crosses the wire through the configured codec before faults or
        // the server validator see it. `F32` is the identity and skips
        // the loop entirely, so fault-free f32 transcripts stay bitwise
        // identical to pre-quantization runs. Stale deliveries were
        // staged (and thus encoded) in their submission round.
        if !cfg.transport.is_f32() {
            for entry in &mut staged {
                quant::roundtrip_in_place(cfg.transport, &mut entry.payload);
            }
        }

        // Transport + delivery. Stale entries land first — they were
        // submitted a round earlier — then this round's staged submissions
        // pass through the fault plan.
        let d = core.dim();
        let mut updates: Vec<Vec<f32>> = Vec::new();
        let mut weights: Vec<f32> = Vec::new();
        let mut malicious_indices: Vec<usize> = Vec::new();
        let mut pending_next: Vec<Pending> = Vec::new();
        for p in pending.drain(..) {
            if server_accepts(&p.payload, d) {
                if p.malicious {
                    malicious_indices.push(updates.len());
                }
                updates.push(p.payload);
                weights.push(p.weight * cfg.faults.straggler_policy.discount());
                stale_delivered += 1;
            } else {
                stale_quarantined += 1;
            }
        }
        for entry in staged {
            match entry.fault {
                None => {
                    // Fault-free transport. Without a live plan this is an
                    // unconditional pass-through (the historical path);
                    // with one, the server validator quarantines malformed
                    // or non-finite submissions before the defense runs.
                    if !faults_active || server_accepts(&entry.payload, d) {
                        if entry.malicious {
                            malicious_indices.push(updates.len());
                        }
                        updates.push(entry.payload);
                        weights.push(entry.weight);
                    } else {
                        quarantined += 1;
                    }
                }
                Some(ClientFault::Dropout) => dropped += 1,
                Some(ClientFault::Straggler) => match cfg.faults.straggler_policy {
                    StragglerPolicy::Drop => dropped += 1,
                    StragglerPolicy::Stale { .. } => {
                        straggling += 1;
                        pending_next.push(Pending {
                            client: entry.client,
                            malicious: entry.malicious,
                            weight: entry.weight,
                            payload: entry.payload,
                        });
                    }
                },
                Some(ClientFault::Malformed(kind)) => {
                    let mut payload = entry.payload;
                    corrupt_payload(
                        kind,
                        &mut payload,
                        sub_seed(cfg.seed, streams::FAULTS, round_u64, entry.client as u64),
                    );
                    if server_accepts(&payload, d) {
                        if entry.malicious {
                            malicious_indices.push(updates.len());
                        }
                        updates.push(payload);
                        weights.push(entry.weight);
                    } else {
                        quarantined += 1;
                    }
                }
            }
        }
        pending = pending_next;

        // Server-side aggregation with graceful degradation: under a live
        // fault plan the defense's parameters are recomputed for the
        // surviving cohort (`DefenseKind::for_cohort`); an impossible
        // quorum skips the round and carries the global model forward.
        let record = core.close_round(
            round,
            RoundInput {
                updates,
                weights,
                malicious_indices,
                degrade: faults_active,
                stale_delivered,
                dropped,
                straggling,
                quarantined,
                stale_quarantined,
                offline: staged_round.offline,
                diverged: staged_round.diverged,
                silent: staged_round.silent,
            },
        )?;
        observer(&record);
        rounds.push(record);

        if let Some(spec) = ckpt {
            if spec.due(round + 1, cfg.rounds) {
                let c = Checkpoint {
                    version: checkpoint::CHECKPOINT_VERSION,
                    fingerprint: fingerprint.clone().expect("fingerprint set with spec"),
                    next_round: round + 1,
                    global_bits: checkpoint::to_bits(core.global()),
                    prev_global_bits: core.prev_global().map(checkpoint::to_bits),
                    rounds: rounds.clone(),
                    pending: pending
                        .iter()
                        .map(|p| PendingStale {
                            client: p.client,
                            malicious: p.malicious,
                            weight_bits: p.weight.to_bits(),
                            payload_bits: checkpoint::to_bits(&p.payload),
                        })
                        .collect(),
                    attack_state: fleet.attack_state(),
                    inflight: Vec::new(),
                    inflight_meta: Vec::new(),
                    checksum: 0,
                }
                .seal();
                checkpoint::save(&spec.dir, &c)?;
            }
        }
    }
    Ok(RunResult {
        rounds,
        final_model: core.global().to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;
    use crate::{AttackSpec, TaskKind};
    use fabflip_agg::DefenseKind;

    fn tiny_cfg() -> FlConfig {
        FlConfig::builder(TaskKind::Fashion)
            .rounds(3)
            .n_clients(12)
            .clients_per_round(6)
            .train_size(240)
            .test_size(80)
            .synth_set_size(6)
            .seed(5)
            .build()
    }

    #[test]
    fn clean_run_learns() {
        // At this tiny scale (20 samples/client, ~2 SGD steps per client
        // per round) learning only clears chance after a dozen-odd rounds,
        // so this test runs longer than the other sims here.
        let mut cfg = tiny_cfg();
        cfg.rounds = 16;
        let r = simulate(&cfg).unwrap();
        assert_eq!(r.rounds.len(), 16);
        // Accuracy must beat chance (10 classes).
        assert!(r.max_accuracy() > 0.15, "trace {:?}", r.accuracy_trace());
    }

    /// The parallelism/determinism contract end-to-end: a fixed-seed round
    /// transcript (accuracies and final model, bitwise) must not depend on
    /// the thread budget. Mirrors running once with `FABFLIP_THREADS=1` and
    /// once with it unset on a multi-core host.
    #[test]
    fn transcript_is_thread_count_invariant() {
        let cfg = tiny_cfg();
        let prev = fabflip_tensor::par::max_threads();
        fabflip_tensor::par::set_max_threads(1);
        let serial = simulate(&cfg).unwrap();
        fabflip_tensor::par::set_max_threads(4);
        let parallel = simulate(&cfg).unwrap();
        fabflip_tensor::par::set_max_threads(prev);
        let acc_bits = |r: &crate::RunResult| -> Vec<u32> {
            r.accuracy_trace().iter().map(|a| a.to_bits()).collect()
        };
        assert_eq!(acc_bits(&serial), acc_bits(&parallel));
        let model_bits = |r: &crate::RunResult| -> Vec<u32> {
            r.final_model.iter().map(|w| w.to_bits()).collect()
        };
        assert_eq!(model_bits(&serial), model_bits(&parallel));
    }

    #[test]
    fn simulation_is_deterministic() {
        let cfg = tiny_cfg();
        let a = simulate(&cfg).unwrap();
        let b = simulate(&cfg).unwrap();
        assert_eq!(a, b);
        let mut cfg2 = tiny_cfg();
        cfg2.seed = 6;
        let c = simulate(&cfg2).unwrap();
        assert_ne!(a.accuracy_trace(), c.accuracy_trace());
    }

    #[test]
    fn random_weight_attack_destroys_undefended_training() {
        let mut cfg = tiny_cfg();
        cfg.attack = AttackSpec::RandomWeights;
        cfg.malicious_fraction = 0.5;
        let attacked = simulate(&cfg).unwrap();
        let clean = simulate(&tiny_cfg()).unwrap();
        assert!(
            attacked.max_accuracy() <= clean.max_accuracy() + 0.05,
            "attack did not hurt: {} vs {}",
            attacked.max_accuracy(),
            clean.max_accuracy()
        );
    }

    #[test]
    fn mkrum_reports_dpr_and_median_does_not() {
        let mut cfg = tiny_cfg();
        cfg.attack = AttackSpec::RandomWeights;
        cfg.defense = DefenseKind::MKrum { f: 2 };
        let r = simulate(&cfg).unwrap();
        // Some round must have had a selection.
        assert!(r.rounds.iter().any(|x| x.selection_available));
        cfg.defense = DefenseKind::Median;
        let r = simulate(&cfg).unwrap();
        assert_eq!(r.dpr(), None);
    }

    #[test]
    fn observer_sees_every_round_in_order() {
        let cfg = tiny_cfg();
        let mut seen = Vec::new();
        let r = crate::sim::simulate_observed(&cfg, |rec| seen.push(rec.round)).unwrap();
        assert_eq!(seen, vec![0, 1, 2]);
        assert_eq!(r.rounds.len(), 3);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = tiny_cfg();
        cfg.rounds = 0;
        assert!(matches!(simulate(&cfg), Err(FlError::BadConfig(_))));
    }

    #[test]
    fn fault_free_records_reconcile_and_are_never_skipped_here() {
        let cfg = tiny_cfg();
        let r = simulate(&cfg).unwrap();
        for rec in &r.rounds {
            assert!(rec.reconciles(cfg.clients_per_round), "{rec:?}");
            assert!(!rec.skipped, "{rec:?}");
            assert_eq!(rec.dropped + rec.straggling + rec.quarantined, 0);
        }
    }

    #[test]
    fn dropout_faults_are_deterministic_and_accounted() {
        let mut cfg = tiny_cfg();
        cfg.faults = FaultPlan::dropout_only(0.4);
        let a = simulate(&cfg).unwrap();
        let b = simulate(&cfg).unwrap();
        assert_eq!(a, b, "fault schedule must be a pure function of cfg");
        assert!(
            a.rounds.iter().any(|rec| rec.dropped > 0),
            "0.4 dropout over {} slots never fired: {:?}",
            cfg.rounds * cfg.clients_per_round,
            a.rounds
        );
        for rec in &a.rounds {
            assert!(rec.reconciles(cfg.clients_per_round), "{rec:?}");
        }
        // And the fault schedule actually changes the transcript.
        let clean = simulate(&tiny_cfg()).unwrap();
        assert_ne!(clean.accuracy_trace(), a.accuracy_trace());
    }

    #[test]
    fn checkpointed_run_resumes_and_matches_uninterrupted() {
        let dir = crate::test_dir("sim-resume");
        let spec = CheckpointSpec::new(&dir, 1);
        let full = simulate(&tiny_cfg()).unwrap();

        // Interrupted run: a truncated round budget with the same
        // fingerprint (the fingerprint excludes `rounds`).
        let mut short = tiny_cfg();
        short.rounds = 2;
        let partial = simulate_with(&short, Some(&spec), |_| {}).unwrap();
        assert_eq!(partial.rounds.len(), 2);

        // Resume to the full budget: only round 2 runs, and the observer
        // confirms restored rounds are not replayed.
        let mut seen = Vec::new();
        let resumed = simulate_with(&tiny_cfg(), Some(&spec), |rec| seen.push(rec.round)).unwrap();
        assert_eq!(seen, vec![2]);
        assert_eq!(resumed, full, "resumed transcript must match bitwise");

        // A second resume finds the completed checkpoint: zero new rounds.
        let mut seen = Vec::new();
        let again = simulate_with(&tiny_cfg(), Some(&spec), |rec| seen.push(rec.round)).unwrap();
        assert!(seen.is_empty());
        assert_eq!(again, full);
        std::fs::remove_dir_all(&dir).ok();
    }
}
