//! The federated-learning simulation loop (paper Sec. II-A, V-A), plus
//! the deterministic fault-injection transport and graceful server-side
//! degradation of DESIGN.md §4d.

use crate::checkpoint::{self, Checkpoint, CheckpointSpec, PendingStale};
use crate::faults::{corrupt_payload, streams, sub_seed, ClientFault, StragglerPolicy};
use crate::metrics::{RoundRecord, RunResult};
use crate::{FlConfig, FlError};
use fabflip_agg::{AggError, Aggregation, Selection};
use fabflip_attacks::{AttackContext, TaskInfo};
use fabflip_data::{dirichlet_partition, Dataset};
use fabflip_nn::losses::{accuracy, softmax_cross_entropy_hard};
use fabflip_nn::Sequential;
use fabflip_tensor::{par, quant};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Fixed task seed: all runs (clean baseline and attacked) share the same
/// class prototypes, so `acc_natk` and `acc_max` are comparable.
const TASK_SEED: u64 = 0xDA7A_5EED;

/// Result of one selected client's local phase.
enum LocalOutcome {
    /// Adversary-controlled: its update is crafted centrally, not here.
    Malicious,
    /// No local data: the client never submits.
    Offline,
    /// Local training produced non-finite weights: fails to submit.
    Diverged,
    /// Dropout fault: the client is unreachable before it computes.
    Dropped,
    /// A finished benign update and its sample weight.
    Trained(Vec<f32>, f32),
}

type ClientOutcome = Result<LocalOutcome, FlError>;

/// A submission staged for this round's transport, tagged with the fault
/// (if any) that strikes it in transit.
struct Staged {
    fault: Option<ClientFault>,
    client: usize,
    malicious: bool,
    weight: f32,
    payload: Vec<f32>,
}

/// A straggler submission held in memory for next-round delivery (the
/// checkpointable form is [`PendingStale`]).
struct Pending {
    client: usize,
    malicious: bool,
    weight: f32,
    payload: Vec<f32>,
}

/// The server's per-submission validator, active only under a live fault
/// plan: a payload is accepted when it has the model dimension, every
/// coordinate is finite, and it is not the all-zero dead-buffer sentinel.
/// Quarantining here is *degradation accounting*; the aggregation rules
/// additionally filter malformed input themselves (defense in depth).
pub(crate) fn server_accepts(payload: &[f32], d: usize) -> bool {
    payload.len() == d && payload.iter().all(|v| v.is_finite()) && payload.iter().any(|&v| v != 0.0)
}

/// Evaluates `model` on `test`, batching to bound peak memory.
///
/// # Errors
///
/// Propagates forward-pass failures.
pub fn evaluate_model(
    model: &mut Sequential,
    test: &Dataset,
    batch: usize,
) -> Result<f32, FlError> {
    let n = test.len();
    if n == 0 {
        return Ok(0.0);
    }
    let mut correct_weighted = 0.0f32;
    let idx: Vec<usize> = (0..n).collect();
    for chunk in idx.chunks(batch.max(1)) {
        let b = test.gather(chunk);
        let logits = model.forward(&b.images)?;
        correct_weighted += accuracy(&logits, &b.labels) * chunk.len() as f32;
    }
    Ok(correct_weighted / n as f32)
}

/// Trains one benign client: start at `global`, run `local_epochs` of
/// mini-batch SGD on the client's shard, return the flat update.
fn train_benign_client(
    cfg: &FlConfig,
    train: &Dataset,
    shard: &[usize],
    global: &[f32],
    rng: &mut StdRng,
) -> Result<Vec<f32>, FlError> {
    let mut model = cfg.task.build_model(rng);
    model.set_flat_params(global)?;
    for _ in 0..cfg.local_epochs {
        for b in train.shuffled_batches(shard, cfg.batch, rng) {
            model.train_step(&b.images, cfg.lr, |logits| {
                softmax_cross_entropy_hard(logits, &b.labels)
            })?;
        }
    }
    Ok(model.flat_params())
}

/// Runs one full FL simulation described by `cfg`.
///
/// Per round: sample `K` clients uniformly; benign clients train locally
/// for one epoch; the single adversarial party crafts **one** malicious
/// update which every selected malicious client submits (Sec. III-A); the
/// server aggregates under the configured defense; the global model is
/// evaluated on the held-out test set. Rounds whose aggregation fails a
/// robustness precondition (too few finite updates) leave the global model
/// unchanged, like a round with no quorum.
///
/// # Errors
///
/// Returns [`FlError`] on configuration, partition, training or attack
/// failures. Aggregation "too few updates" is tolerated per round; all
/// other aggregation errors abort.
pub fn simulate(cfg: &FlConfig) -> Result<RunResult, FlError> {
    simulate_with(cfg, None, |_| {})
}

/// Like [`simulate`], invoking `observer` with each round's record as soon
/// as it is complete — for live progress display and streaming dashboards.
///
/// # Errors
///
/// Same conditions as [`simulate`].
pub fn simulate_observed<F: FnMut(&RoundRecord)>(
    cfg: &FlConfig,
    observer: F,
) -> Result<RunResult, FlError> {
    simulate_with(cfg, None, observer)
}

/// The full simulation entry point: [`simulate_observed`] plus an optional
/// crash-safe checkpoint sink.
///
/// With a [`CheckpointSpec`], the run first tries to resume from the
/// latest intact checkpoint for this config (restored rounds are **not**
/// replayed through `observer`), then saves its complete cross-round state
/// every `spec.every` completed rounds and at completion. Everything a
/// round reads beyond that state is a pure function of `(cfg, round)` —
/// per-round RNG streams, the fault schedule, datasets, the partition —
/// so a resumed run's remaining transcript is bitwise identical to an
/// uninterrupted one (pinned by the resume-equivalence proptest in
/// `tests/robustness.rs`).
///
/// # Errors
///
/// Same conditions as [`simulate`], plus [`FlError::Checkpoint`] when a
/// checkpoint cannot be *written* (corrupt checkpoints on read degrade to
/// recomputation instead).
pub fn simulate_with<F: FnMut(&RoundRecord)>(
    cfg: &FlConfig,
    ckpt: Option<&CheckpointSpec>,
    mut observer: F,
) -> Result<RunResult, FlError> {
    cfg.validate().map_err(FlError::BadConfig)?;
    let spec = cfg.task.spec();
    let train = Dataset::synthesize_split(
        &spec,
        cfg.train_size,
        TASK_SEED,
        sub_seed(cfg.seed, streams::TRAIN_DATA, 0, 0),
    );
    let test = Dataset::synthesize_split(
        &spec,
        cfg.test_size,
        TASK_SEED,
        sub_seed(cfg.seed, streams::TEST_DATA, 0, 0),
    );
    let shards = dirichlet_partition(
        &train,
        cfg.n_clients,
        cfg.beta,
        sub_seed(cfg.seed, streams::PARTITION, 0, 0),
    )?;

    // Adversary-controlled clients: a uniformly random subset, kept as a
    // sorted vector (membership via binary search) so every iteration over
    // it is deterministic — a HashSet here leaks hash order into the
    // adversary's data pool (fabcheck: nondeterministic-collection).
    let mut setup_rng = StdRng::seed_from_u64(sub_seed(cfg.seed, streams::MALICIOUS_SET, 0, 0));
    let mut ids: Vec<usize> = (0..cfg.n_clients).collect();
    ids.shuffle(&mut setup_rng);
    let mut malicious: Vec<usize> = ids[..cfg.n_malicious()].to_vec();
    malicious.sort_unstable();
    let is_malicious = |c: usize| malicious.binary_search(&c).is_ok();

    // The Fig. 7 real-data adversary pools its clients' Dirichlet shards.
    let adversary_data = if cfg.attack.needs_adversary_data() {
        let mut pool: Vec<usize> = malicious
            .iter()
            .flat_map(|&c| shards[c].iter().copied())
            .collect();
        pool.sort_unstable();
        let b = train.gather(&pool);
        Some(Dataset::new(b.images, b.labels, train.num_classes()))
    } else {
        None
    };
    let mut attack = cfg.attack.build(adversary_data);

    let task_info = TaskInfo {
        channels: spec.channels,
        height: spec.height,
        width: spec.width,
        num_classes: spec.num_classes,
        synth_set_size: cfg.synth_set_size,
        local_lr: cfg.lr,
        local_batch: cfg.batch,
        local_epochs: cfg.local_epochs,
    };
    let defense = cfg.defense.build()?;
    // FLTrust extension: the server's clean root dataset (same task,
    // independent sample stream).
    let fltrust_root = cfg.fltrust_root_size.map(|n| {
        Dataset::synthesize_split(
            &spec,
            n,
            TASK_SEED,
            sub_seed(cfg.seed, streams::FLTRUST_ROOT, 0, 0),
        )
    });
    let build_model = {
        let task = cfg.task;
        move |rng: &mut StdRng| task.build_model(rng)
    };
    // The degradation layer (validator + dynamic quorum) switches on only
    // under a live fault plan, so fault-free configs take the exact
    // historical code path, bit for bit.
    let faults_active = cfg.faults.is_active();
    let fingerprint = ckpt.map(|_| checkpoint::fingerprint(cfg));

    let mut init_rng = StdRng::seed_from_u64(sub_seed(cfg.seed, streams::MODEL_INIT, 0, 0));
    let mut global_model = cfg.task.build_model(&mut init_rng);
    let mut global = global_model.flat_params();
    let mut prev_global: Option<Vec<f32>> = None;
    let mut pending: Vec<Pending> = Vec::new();
    let mut rounds: Vec<RoundRecord> = Vec::with_capacity(cfg.rounds);
    let mut start_round = 0usize;

    if let Some(spec) = ckpt {
        if let Some(c) = checkpoint::load(&spec.dir, cfg) {
            if c.global_bits.len() == global.len() {
                global = checkpoint::from_bits(&c.global_bits);
                prev_global = c.prev_global_bits.as_deref().map(checkpoint::from_bits);
                global_model.set_flat_params(&global)?;
                pending = c
                    .pending
                    .iter()
                    .map(|p| Pending {
                        client: p.client,
                        malicious: p.malicious,
                        weight: f32::from_bits(p.weight_bits),
                        payload: checkpoint::from_bits(&p.payload_bits),
                    })
                    .collect();
                if let Some(a) = attack.as_mut() {
                    a.restore_state(&c.attack_state);
                }
                start_round = c.next_round;
                rounds = c.rounds;
            }
        }
    }

    for round in start_round..cfg.rounds {
        let round_u64 = round as u64;
        let mut round_rng =
            StdRng::seed_from_u64(sub_seed(cfg.seed, streams::CLIENT_SAMPLING, round_u64, 0));
        let mut pool: Vec<usize> = (0..cfg.n_clients).collect();
        pool.shuffle(&mut round_rng);
        let selected = &pool[..cfg.clients_per_round];

        // The round's fault schedule — pure per (seed, round, client), so
        // it is thread-count invariant and recomputed identically after a
        // resume (no fault state is checkpointed beyond pending stales).
        let faults: Vec<Option<ClientFault>> = selected
            .iter()
            .map(|&c| cfg.faults.fault_for(cfg.seed, round_u64, c as u64))
            .collect();
        let malicious_sel: Vec<(usize, usize)> = selected
            .iter()
            .enumerate()
            .filter(|&(_, &c)| is_malicious(c))
            .map(|(s, &c)| (s, c))
            .collect();

        // Benign local training. Every client already draws from an
        // independent RNG stream keyed by (seed, round, client), so clients
        // train in parallel and their updates are merged in selection order
        // — the transcript is bitwise identical to the sequential loop (see
        // the determinism contract in `fabflip_tensor::par`).
        let train_ref = &train;
        let shards_ref = &shards;
        let global_ref = &global;
        let is_malicious_ref = &is_malicious;
        let faults_ref = &faults;
        let outcomes: Vec<ClientOutcome> = par::map_collect(selected.len(), |s| {
            let client = selected[s];
            if is_malicious_ref(client) {
                return Ok(LocalOutcome::Malicious);
            }
            let shard = &shards_ref[client];
            if shard.is_empty() {
                return Ok(LocalOutcome::Offline);
            }
            if faults_ref[s] == Some(ClientFault::Dropout) {
                // Dropout strikes before local compute: nothing to train.
                return Ok(LocalOutcome::Dropped);
            }
            let mut crng = StdRng::seed_from_u64(sub_seed(
                cfg.seed,
                streams::CLIENT_TRAIN,
                round_u64,
                client as u64,
            ));
            let w = train_benign_client(cfg, train_ref, shard, global_ref, &mut crng)?;
            if w.iter().any(|v| !v.is_finite()) {
                // Local training diverged (possible once the global model
                // is poisoned): a real client would fail to submit. Skip
                // it so non-finite values never reach attacks or defenses.
                return Ok(LocalOutcome::Diverged);
            }
            Ok(LocalOutcome::Trained(w, shard.len() as f32))
        });

        let mut offline = 0usize;
        let mut diverged = 0usize;
        let mut dropped = 0usize;
        let mut straggling = 0usize;
        let mut quarantined = 0usize;
        let mut stale_quarantined = 0usize;
        let mut stale_delivered = 0usize;
        let mut silent = 0usize;
        // The adversary's oracle is the benign updates as *computed* —
        // its white-box client-level view, before transport faults strike
        // (dropout happens pre-compute, so dropped clients are absent).
        let mut benign_updates: Vec<Vec<f32>> = Vec::new();
        let mut staged: Vec<Staged> = Vec::new();
        for (s, outcome) in outcomes.into_iter().enumerate() {
            match outcome? {
                LocalOutcome::Malicious => {}
                LocalOutcome::Offline => offline += 1,
                LocalOutcome::Diverged => diverged += 1,
                LocalOutcome::Dropped => dropped += 1,
                LocalOutcome::Trained(w, weight) => {
                    benign_updates.push(w.clone());
                    staged.push(Staged {
                        fault: faults[s],
                        client: selected[s],
                        malicious: false,
                        weight,
                        payload: w,
                    });
                }
            }
        }

        // Adversarial crafting: one update for all malicious clients,
        // staged pre-transport (the adversary does not know the fault
        // schedule; per-copy Sybil noise is drawn in selection order for
        // every copy, faulted or not, so the draw sequence matches the
        // fault-free transcript).
        let malicious_selected = malicious_sel.len();
        if malicious_selected > 0 {
            if let Some(attack) = attack.as_mut() {
                let empty: Vec<Vec<f32>> = Vec::new();
                let oracle: &[Vec<f32>] = if cfg.attack.uses_benign_oracle() {
                    &benign_updates
                } else {
                    &empty
                };
                let ctx = AttackContext {
                    global: &global,
                    prev_global: prev_global.as_deref(),
                    benign_updates: oracle,
                    n_selected: cfg.clients_per_round,
                    n_malicious_selected: malicious_selected,
                    task: &task_info,
                    build_model: &build_model,
                };
                let mut arng =
                    StdRng::seed_from_u64(sub_seed(cfg.seed, streams::ATTACK, round_u64, 0));
                match attack.craft(&ctx, &mut arng) {
                    Ok(w_mal) => {
                        for &(s, client) in &malicious_sel {
                            let mut copy = w_mal.clone();
                            if cfg.sybil_noise > 0.0 {
                                // Sec. III-A: independent per-copy noise to
                                // break Sybil-similarity detection.
                                use rand::Rng;
                                for v in &mut copy {
                                    let u1: f32 = arng.gen_range(f32::EPSILON..1.0);
                                    let u2: f32 = arng.gen_range(0.0..1.0);
                                    let n = (-2.0 * u1.ln()).sqrt()
                                        * (std::f32::consts::TAU * u2).cos();
                                    *v += cfg.sybil_noise * n;
                                }
                            }
                            staged.push(Staged {
                                fault: faults[s],
                                client,
                                malicious: true,
                                weight: cfg.synth_set_size.max(1) as f32,
                                payload: copy,
                            });
                        }
                    }
                    // An oracle-dependent attack cannot act in a round whose
                    // oracle is empty or unusable: malicious clients stay
                    // silent.
                    Err(fabflip_attacks::AttackError::NeedsBenignUpdates(_)) => {
                        silent += malicious_selected;
                    }
                    Err(e) => return Err(e.into()),
                }
            } else {
                // No attack configured: sampled malicious clients submit
                // nothing (the clean-baseline behaviour, now accounted).
                silent += malicious_selected;
            }
        }

        // Quantized transport (DESIGN.md §4e): every staged payload
        // crosses the wire through the configured codec before faults or
        // the server validator see it. `F32` is the identity and skips
        // the loop entirely, so fault-free f32 transcripts stay bitwise
        // identical to pre-quantization runs. Stale deliveries were
        // staged (and thus encoded) in their submission round.
        if !cfg.transport.is_f32() {
            for entry in &mut staged {
                quant::roundtrip_in_place(cfg.transport, &mut entry.payload);
            }
        }

        // Transport + delivery. Stale entries land first — they were
        // submitted a round earlier — then this round's staged submissions
        // pass through the fault plan.
        let d = global.len();
        let mut updates: Vec<Vec<f32>> = Vec::new();
        let mut weights: Vec<f32> = Vec::new();
        let mut malicious_indices: Vec<usize> = Vec::new();
        let mut pending_next: Vec<Pending> = Vec::new();
        for p in pending.drain(..) {
            if server_accepts(&p.payload, d) {
                if p.malicious {
                    malicious_indices.push(updates.len());
                }
                updates.push(p.payload);
                weights.push(p.weight * cfg.faults.straggler_policy.discount());
                stale_delivered += 1;
            } else {
                stale_quarantined += 1;
            }
        }
        for entry in staged {
            match entry.fault {
                None => {
                    // Fault-free transport. Without a live plan this is an
                    // unconditional pass-through (the historical path);
                    // with one, the server validator quarantines malformed
                    // or non-finite submissions before the defense runs.
                    if !faults_active || server_accepts(&entry.payload, d) {
                        if entry.malicious {
                            malicious_indices.push(updates.len());
                        }
                        updates.push(entry.payload);
                        weights.push(entry.weight);
                    } else {
                        quarantined += 1;
                    }
                }
                Some(ClientFault::Dropout) => dropped += 1,
                Some(ClientFault::Straggler) => match cfg.faults.straggler_policy {
                    StragglerPolicy::Drop => dropped += 1,
                    StragglerPolicy::Stale { .. } => {
                        straggling += 1;
                        pending_next.push(Pending {
                            client: entry.client,
                            malicious: entry.malicious,
                            weight: entry.weight,
                            payload: entry.payload,
                        });
                    }
                },
                Some(ClientFault::Malformed(kind)) => {
                    let mut payload = entry.payload;
                    corrupt_payload(
                        kind,
                        &mut payload,
                        sub_seed(cfg.seed, streams::FAULTS, round_u64, entry.client as u64),
                    );
                    if server_accepts(&payload, d) {
                        if entry.malicious {
                            malicious_indices.push(updates.len());
                        }
                        updates.push(payload);
                        weights.push(entry.weight);
                    } else {
                        quarantined += 1;
                    }
                }
            }
        }
        pending = pending_next;

        // Server-side aggregation with graceful degradation: under a live
        // fault plan the defense's parameters are recomputed for the
        // surviving cohort (`DefenseKind::for_cohort`); an impossible
        // quorum skips the round and carries the global model forward.
        let mut malicious_passed = 0usize;
        let mut selection_available = false;
        let mut skipped = false;
        let outcome: Option<Result<Aggregation, AggError>> = if updates.is_empty() {
            None
        } else if let Some(root) = &fltrust_root {
            // FLTrust: the server computes its own root update, then
            // trust-scores the clients against it (any cohort n ≥ 1).
            let mut srng =
                StdRng::seed_from_u64(sub_seed(cfg.seed, streams::FLTRUST_SERVER, round_u64, 0));
            let all: Vec<usize> = (0..root.len()).collect();
            let server_update = train_benign_client(cfg, root, &all, &global, &mut srng)?;
            Some(fabflip_agg::fltrust_aggregate(
                &updates,
                &global,
                &server_update,
            ))
        } else {
            let effective = if faults_active {
                cfg.defense.for_cohort(updates.len())
            } else {
                Some(cfg.defense)
            };
            match effective {
                None => None,
                Some(kind) if kind == cfg.defense => {
                    Some(defense.aggregate_with_reference(&updates, &weights, Some(&global)))
                }
                Some(kind) => Some(kind.build()?.aggregate_with_reference(
                    &updates,
                    &weights,
                    Some(&global),
                )),
            }
        };
        match outcome {
            Some(Ok(agg)) => {
                if let Selection::Chosen(ref kept) = agg.selection {
                    selection_available = true;
                    malicious_passed = kept
                        .iter()
                        .filter(|i| malicious_indices.contains(i))
                        .count();
                }
                prev_global = Some(global.clone());
                global = agg.model;
                global_model.set_flat_params(&global)?;
            }
            Some(Err(AggError::TooFewUpdates { .. })) | Some(Err(AggError::NoUpdates)) => {
                // No quorum this round: global model carried forward.
                skipped = true;
            }
            Some(Err(e)) => return Err(e.into()),
            None => skipped = true,
        }

        let acc = evaluate_model(&mut global_model, &test, 100)?;
        let record = RoundRecord {
            round,
            accuracy: acc,
            // DPR denominator: malicious submissions actually delivered.
            malicious_selected: malicious_indices.len(),
            malicious_passed,
            selection_available,
            delivered: updates.len(),
            stale: stale_delivered,
            dropped,
            straggling,
            quarantined,
            stale_quarantined,
            offline,
            diverged,
            silent,
            skipped,
        };
        observer(&record);
        rounds.push(record);

        if let Some(spec) = ckpt {
            if spec.due(round + 1, cfg.rounds) {
                let c = Checkpoint {
                    version: checkpoint::CHECKPOINT_VERSION,
                    fingerprint: fingerprint.clone().expect("fingerprint set with spec"),
                    next_round: round + 1,
                    global_bits: checkpoint::to_bits(&global),
                    prev_global_bits: prev_global.as_deref().map(checkpoint::to_bits),
                    rounds: rounds.clone(),
                    pending: pending
                        .iter()
                        .map(|p| PendingStale {
                            client: p.client,
                            malicious: p.malicious,
                            weight_bits: p.weight.to_bits(),
                            payload_bits: checkpoint::to_bits(&p.payload),
                        })
                        .collect(),
                    attack_state: attack
                        .as_ref()
                        .map_or_else(Vec::new, |a| a.checkpoint_state()),
                    checksum: 0,
                }
                .seal();
                checkpoint::save(&spec.dir, &c)?;
            }
        }
    }
    Ok(RunResult {
        rounds,
        final_model: global,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;
    use crate::{AttackSpec, TaskKind};
    use fabflip_agg::DefenseKind;

    fn tiny_cfg() -> FlConfig {
        FlConfig::builder(TaskKind::Fashion)
            .rounds(3)
            .n_clients(12)
            .clients_per_round(6)
            .train_size(240)
            .test_size(80)
            .synth_set_size(6)
            .seed(5)
            .build()
    }

    #[test]
    fn clean_run_learns() {
        // At this tiny scale (20 samples/client, ~2 SGD steps per client
        // per round) learning only clears chance after a dozen-odd rounds,
        // so this test runs longer than the other sims here.
        let mut cfg = tiny_cfg();
        cfg.rounds = 16;
        let r = simulate(&cfg).unwrap();
        assert_eq!(r.rounds.len(), 16);
        // Accuracy must beat chance (10 classes).
        assert!(r.max_accuracy() > 0.15, "trace {:?}", r.accuracy_trace());
    }

    /// The parallelism/determinism contract end-to-end: a fixed-seed round
    /// transcript (accuracies and final model, bitwise) must not depend on
    /// the thread budget. Mirrors running once with `FABFLIP_THREADS=1` and
    /// once with it unset on a multi-core host.
    #[test]
    fn transcript_is_thread_count_invariant() {
        let cfg = tiny_cfg();
        let prev = fabflip_tensor::par::max_threads();
        fabflip_tensor::par::set_max_threads(1);
        let serial = simulate(&cfg).unwrap();
        fabflip_tensor::par::set_max_threads(4);
        let parallel = simulate(&cfg).unwrap();
        fabflip_tensor::par::set_max_threads(prev);
        let acc_bits = |r: &crate::RunResult| -> Vec<u32> {
            r.accuracy_trace().iter().map(|a| a.to_bits()).collect()
        };
        assert_eq!(acc_bits(&serial), acc_bits(&parallel));
        let model_bits = |r: &crate::RunResult| -> Vec<u32> {
            r.final_model.iter().map(|w| w.to_bits()).collect()
        };
        assert_eq!(model_bits(&serial), model_bits(&parallel));
    }

    #[test]
    fn simulation_is_deterministic() {
        let cfg = tiny_cfg();
        let a = simulate(&cfg).unwrap();
        let b = simulate(&cfg).unwrap();
        assert_eq!(a, b);
        let mut cfg2 = tiny_cfg();
        cfg2.seed = 6;
        let c = simulate(&cfg2).unwrap();
        assert_ne!(a.accuracy_trace(), c.accuracy_trace());
    }

    #[test]
    fn random_weight_attack_destroys_undefended_training() {
        let mut cfg = tiny_cfg();
        cfg.attack = AttackSpec::RandomWeights;
        cfg.malicious_fraction = 0.5;
        let attacked = simulate(&cfg).unwrap();
        let clean = simulate(&tiny_cfg()).unwrap();
        assert!(
            attacked.max_accuracy() <= clean.max_accuracy() + 0.05,
            "attack did not hurt: {} vs {}",
            attacked.max_accuracy(),
            clean.max_accuracy()
        );
    }

    #[test]
    fn mkrum_reports_dpr_and_median_does_not() {
        let mut cfg = tiny_cfg();
        cfg.attack = AttackSpec::RandomWeights;
        cfg.defense = DefenseKind::MKrum { f: 2 };
        let r = simulate(&cfg).unwrap();
        // Some round must have had a selection.
        assert!(r.rounds.iter().any(|x| x.selection_available));
        cfg.defense = DefenseKind::Median;
        let r = simulate(&cfg).unwrap();
        assert_eq!(r.dpr(), None);
    }

    #[test]
    fn observer_sees_every_round_in_order() {
        let cfg = tiny_cfg();
        let mut seen = Vec::new();
        let r = crate::sim::simulate_observed(&cfg, |rec| seen.push(rec.round)).unwrap();
        assert_eq!(seen, vec![0, 1, 2]);
        assert_eq!(r.rounds.len(), 3);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = tiny_cfg();
        cfg.rounds = 0;
        assert!(matches!(simulate(&cfg), Err(FlError::BadConfig(_))));
    }

    #[test]
    fn fault_free_records_reconcile_and_are_never_skipped_here() {
        let cfg = tiny_cfg();
        let r = simulate(&cfg).unwrap();
        for rec in &r.rounds {
            assert!(rec.reconciles(cfg.clients_per_round), "{rec:?}");
            assert!(!rec.skipped, "{rec:?}");
            assert_eq!(rec.dropped + rec.straggling + rec.quarantined, 0);
        }
    }

    #[test]
    fn dropout_faults_are_deterministic_and_accounted() {
        let mut cfg = tiny_cfg();
        cfg.faults = FaultPlan::dropout_only(0.4);
        let a = simulate(&cfg).unwrap();
        let b = simulate(&cfg).unwrap();
        assert_eq!(a, b, "fault schedule must be a pure function of cfg");
        assert!(
            a.rounds.iter().any(|rec| rec.dropped > 0),
            "0.4 dropout over {} slots never fired: {:?}",
            cfg.rounds * cfg.clients_per_round,
            a.rounds
        );
        for rec in &a.rounds {
            assert!(rec.reconciles(cfg.clients_per_round), "{rec:?}");
        }
        // And the fault schedule actually changes the transcript.
        let clean = simulate(&tiny_cfg()).unwrap();
        assert_ne!(clean.accuracy_trace(), a.accuracy_trace());
    }

    #[test]
    fn checkpointed_run_resumes_and_matches_uninterrupted() {
        let dir = crate::test_dir("sim-resume");
        let spec = CheckpointSpec::new(&dir, 1);
        let full = simulate(&tiny_cfg()).unwrap();

        // Interrupted run: a truncated round budget with the same
        // fingerprint (the fingerprint excludes `rounds`).
        let mut short = tiny_cfg();
        short.rounds = 2;
        let partial = simulate_with(&short, Some(&spec), |_| {}).unwrap();
        assert_eq!(partial.rounds.len(), 2);

        // Resume to the full budget: only round 2 runs, and the observer
        // confirms restored rounds are not replayed.
        let mut seen = Vec::new();
        let resumed = simulate_with(&tiny_cfg(), Some(&spec), |rec| seen.push(rec.round)).unwrap();
        assert_eq!(seen, vec![2]);
        assert_eq!(resumed, full, "resumed transcript must match bitwise");

        // A second resume finds the completed checkpoint: zero new rounds.
        let mut seen = Vec::new();
        let again = simulate_with(&tiny_cfg(), Some(&spec), |rec| seen.push(rec.round)).unwrap();
        assert!(seen.is_empty());
        assert_eq!(again, full);
        std::fs::remove_dir_all(&dir).ok();
    }
}
