use crate::faults::FaultPlan;
use crate::AttackSpec;
use fabflip_agg::DefenseKind;
use fabflip_data::SynthSpec;
use fabflip_nn::{models, Sequential};
use fabflip_tensor::quant::Codec;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Which of the paper's two image tasks to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskKind {
    /// Fashion-MNIST stand-in: 28×28×1, 2-conv CNN.
    Fashion,
    /// CIFAR-10 stand-in: 32×32×3, 6-conv CNN.
    Cifar,
}

impl TaskKind {
    /// The procedural dataset specification for the task.
    pub fn spec(&self) -> SynthSpec {
        match self {
            TaskKind::Fashion => SynthSpec::fashion_like(),
            TaskKind::Cifar => SynthSpec::cifar_like(),
        }
    }

    /// Builds the task's classifier architecture.
    pub fn build_model(&self, rng: &mut StdRng) -> Sequential {
        match self {
            TaskKind::Fashion => models::fashion_cnn(rng),
            TaskKind::Cifar => models::cifar_cnn(rng),
        }
    }

    /// Default local learning rate (the deeper CIFAR net needs a smaller
    /// step, see the calibration notes in EXPERIMENTS.md).
    pub fn default_lr(&self) -> f32 {
        match self {
            TaskKind::Fashion => 0.08,
            TaskKind::Cifar => 0.05,
        }
    }

    /// Default local epochs. The paper trains one local epoch; on the
    /// reproduction's reduced data scale the deeper CIFAR net needs more
    /// local work per round to approach its accuracy ceiling within the
    /// rounds budget (calibration in EXPERIMENTS.md).
    pub fn default_local_epochs(&self) -> usize {
        match self {
            TaskKind::Fashion => 1,
            TaskKind::Cifar => 3,
        }
    }

    /// Default number of global rounds.
    pub fn default_rounds(&self) -> usize {
        match self {
            TaskKind::Fashion => 30,
            TaskKind::Cifar => 40,
        }
    }

    /// Display name matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            TaskKind::Fashion => "Fashion-MNIST",
            TaskKind::Cifar => "Cifar-10",
        }
    }
}

fn is_zero_f32(v: &f32) -> bool {
    *v == 0.0
}

/// Full configuration of one FL experiment (one cell of the paper's grid).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlConfig {
    /// The image task.
    pub task: TaskKind,
    /// Total number of clients `N` (paper: 100).
    pub n_clients: usize,
    /// Clients sampled uniformly per round `K` (paper: 10).
    pub clients_per_round: usize,
    /// Fraction of clients controlled by the adversary (paper: 0.2).
    pub malicious_fraction: f64,
    /// Global training rounds `R`.
    pub rounds: usize,
    /// Local epochs per selected client (paper: 1).
    pub local_epochs: usize,
    /// Uniform local learning rate `η`.
    pub lr: f32,
    /// Local mini-batch size.
    pub batch: usize,
    /// Total training images (the paper uses 10% of the full datasets).
    pub train_size: usize,
    /// Held-out test images for global evaluation.
    pub test_size: usize,
    /// Dirichlet heterogeneity `β` (paper default 0.5; Table III sweeps
    /// 0.1 / 0.5 / 0.9).
    pub beta: f64,
    /// Synthetic-set size `|S|` for data-free attacks.
    pub synth_set_size: usize,
    /// Server-side aggregation rule.
    pub defense: DefenseKind,
    /// The adversary's strategy ([`AttackSpec::None`] for clean runs).
    pub attack: AttackSpec,
    /// Standard deviation of independent Gaussian noise each malicious
    /// client adds to its copy of the crafted update — the paper's
    /// Sec. III-A Sybil-defense circumvention trick. `0` (default) submits
    /// identical copies. Skipped in serialization when zero so result-cache
    /// keys stay stable.
    #[serde(default, skip_serializing_if = "is_zero_f32")]
    pub sybil_noise: f32,
    /// When set, the server uses FLTrust-style aggregation (extension):
    /// it owns a clean root dataset of this size, computes its own update
    /// per round, and trust-scores clients against it — `defense` is
    /// ignored. Skipped in serialization when `None` for cache-key
    /// stability.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub fltrust_root_size: Option<usize>,
    /// Deterministic transport-fault rates (DESIGN.md §4d). The default
    /// plan is inactive — no faults, and the field is skipped in
    /// serialization so result-cache keys of fault-free configs stay
    /// stable.
    #[serde(default, skip_serializing_if = "FaultPlan::is_inactive")]
    pub faults: FaultPlan,
    /// Client→server update encoding (DESIGN.md §4e). The default `F32`
    /// is lossless and adds zero code to the round path, so fault-free
    /// f32 transcripts stay bitwise identical to pre-quantization runs;
    /// `F16`/`I8` apply the deterministic encode→decode roundtrip to
    /// every staged payload before the server sees it. Skipped in
    /// serialization when `F32` for cache-key stability.
    #[serde(default, skip_serializing_if = "Codec::is_f32")]
    pub transport: Codec,
    /// Master seed: fixes the task prototypes, the partition, client
    /// sampling, model init, all attack randomness and the fault plan.
    pub seed: u64,
}

impl FlConfig {
    /// Starts a builder with the paper's defaults for `task`, scaled to the
    /// reproduction's CPU budget (see DESIGN.md §3).
    pub fn builder(task: TaskKind) -> FlConfigBuilder {
        FlConfigBuilder {
            cfg: FlConfig {
                task,
                n_clients: 100,
                clients_per_round: 10,
                malicious_fraction: 0.2,
                rounds: task.default_rounds(),
                local_epochs: task.default_local_epochs(),
                lr: task.default_lr(),
                batch: 16,
                train_size: 2000,
                test_size: if matches!(task, TaskKind::Fashion) {
                    400
                } else {
                    300
                },
                beta: 0.5,
                synth_set_size: 20,
                defense: DefenseKind::FedAvg,
                attack: AttackSpec::None,
                sybil_noise: 0.0,
                fltrust_root_size: None,
                faults: FaultPlan::default(),
                transport: Codec::F32,
                seed: 0,
            },
        }
    }

    /// Number of malicious clients `⌊fraction · N⌋`.
    pub fn n_malicious(&self) -> usize {
        (self.malicious_fraction * self.n_clients as f64).floor() as usize
    }

    /// Validates cross-field constraints.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.rounds == 0 {
            return Err("rounds must be positive".into());
        }
        if self.clients_per_round == 0 || self.clients_per_round > self.n_clients {
            return Err(format!(
                "clients_per_round {} must be in 1..={}",
                self.clients_per_round, self.n_clients
            ));
        }
        if !(0.0..=0.5).contains(&self.malicious_fraction) {
            return Err("malicious fraction must be within [0, 0.5] (threat model)".into());
        }
        if self.train_size == 0 || self.test_size == 0 {
            return Err("train and test sizes must be positive".into());
        }
        if self.batch == 0 {
            return Err("batch must be positive".into());
        }
        if self.sybil_noise < 0.0 {
            return Err("sybil noise must be non-negative".into());
        }
        if self.fltrust_root_size == Some(0) {
            return Err("fltrust root dataset must be non-empty".into());
        }
        self.faults.validate()?;
        Ok(())
    }
}

/// Builder for [`FlConfig`] (non-consuming setters, terminal [`FlConfigBuilder::build`]).
#[derive(Debug, Clone)]
pub struct FlConfigBuilder {
    cfg: FlConfig,
}

impl FlConfigBuilder {
    /// Sets the number of global rounds.
    pub fn rounds(mut self, rounds: usize) -> Self {
        self.cfg.rounds = rounds;
        self
    }

    /// Sets the total client population.
    pub fn n_clients(mut self, n: usize) -> Self {
        self.cfg.n_clients = n;
        self
    }

    /// Sets the per-round sample size `K`.
    pub fn clients_per_round(mut self, k: usize) -> Self {
        self.cfg.clients_per_round = k;
        self
    }

    /// Sets the adversary's share of the population.
    pub fn malicious_fraction(mut self, f: f64) -> Self {
        self.cfg.malicious_fraction = f;
        self
    }

    /// Sets the local learning rate.
    pub fn lr(mut self, lr: f32) -> Self {
        self.cfg.lr = lr;
        self
    }

    /// Sets local epochs per round.
    pub fn local_epochs(mut self, e: usize) -> Self {
        self.cfg.local_epochs = e;
        self
    }

    /// Sets the local mini-batch size.
    pub fn batch(mut self, b: usize) -> Self {
        self.cfg.batch = b;
        self
    }

    /// Sets the training-set size.
    pub fn train_size(mut self, n: usize) -> Self {
        self.cfg.train_size = n;
        self
    }

    /// Sets the test-set size.
    pub fn test_size(mut self, n: usize) -> Self {
        self.cfg.test_size = n;
        self
    }

    /// Sets the Dirichlet heterogeneity `β`.
    pub fn beta(mut self, beta: f64) -> Self {
        self.cfg.beta = beta;
        self
    }

    /// Sets the synthetic-set size `|S|`.
    pub fn synth_set_size(mut self, s: usize) -> Self {
        self.cfg.synth_set_size = s;
        self
    }

    /// Sets the server-side defense.
    pub fn defense(mut self, d: DefenseKind) -> Self {
        self.cfg.defense = d;
        self
    }

    /// Sets the attack.
    pub fn attack(mut self, a: AttackSpec) -> Self {
        self.cfg.attack = a;
        self
    }

    /// Sets the per-copy Sybil perturbation noise (Sec. III-A).
    pub fn sybil_noise(mut self, std: f32) -> Self {
        self.cfg.sybil_noise = std;
        self
    }

    /// Enables FLTrust-style server aggregation with a clean root dataset
    /// of `n` images (extension; overrides the configured defense).
    pub fn fltrust_root(mut self, n: usize) -> Self {
        self.cfg.fltrust_root_size = Some(n);
        self
    }

    /// Sets the deterministic transport-fault plan (DESIGN.md §4d).
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.cfg.faults = plan;
        self
    }

    /// Sets the client→server update encoding (DESIGN.md §4e).
    pub fn transport(mut self, codec: Codec) -> Self {
        self.cfg.transport = codec;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Panics
    ///
    /// Panics when the configuration violates [`FlConfig::validate`] —
    /// builder misuse is a programming error.
    pub fn build(self) -> FlConfig {
        if let Err(msg) = self.cfg.validate() {
            panic!("invalid FlConfig: {msg}");
        }
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_paper_population() {
        let cfg = FlConfig::builder(TaskKind::Fashion).build();
        assert_eq!(cfg.n_clients, 100);
        assert_eq!(cfg.clients_per_round, 10);
        assert_eq!(cfg.n_malicious(), 20);
        assert_eq!(cfg.beta, 0.5);
        assert_eq!(cfg.local_epochs, 1);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut cfg = FlConfig::builder(TaskKind::Fashion).build();
        cfg.rounds = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = FlConfig::builder(TaskKind::Fashion).build();
        cfg.malicious_fraction = 0.7;
        assert!(
            cfg.validate().is_err(),
            "threat model caps attackers at 50%"
        );
        let mut cfg = FlConfig::builder(TaskKind::Fashion).build();
        cfg.clients_per_round = 1000;
        assert!(cfg.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid FlConfig")]
    fn builder_panics_on_invalid() {
        let _ = FlConfig::builder(TaskKind::Fashion).rounds(0).build();
    }

    #[test]
    fn task_kind_geometry() {
        assert_eq!(TaskKind::Fashion.spec().channels, 1);
        assert_eq!(TaskKind::Cifar.spec().channels, 3);
        assert_eq!(TaskKind::Fashion.label(), "Fashion-MNIST");
        let mut rng = rand::SeedableRng::seed_from_u64(0);
        let mut m = TaskKind::Fashion.build_model(&mut rng);
        assert!(m.num_params() > 1000);
    }

    #[test]
    fn inactive_fault_plan_keeps_cache_keys_stable() {
        let cfg = FlConfig::builder(TaskKind::Fashion).build();
        let s = serde_json::to_string(&cfg).unwrap();
        assert!(
            !s.contains("faults"),
            "fault-free configs must serialize exactly as before the fault model: {s}"
        );
        let active = FlConfig::builder(TaskKind::Fashion)
            .faults(FaultPlan::dropout_only(0.2))
            .build();
        let s = serde_json::to_string(&active).unwrap();
        assert!(s.contains("faults"));
        let back: FlConfig = serde_json::from_str(&s).unwrap();
        assert_eq!(active, back);
    }

    #[test]
    #[should_panic(expected = "invalid FlConfig")]
    fn builder_rejects_bad_fault_rates() {
        let _ = FlConfig::builder(TaskKind::Fashion)
            .faults(FaultPlan::dropout_only(1.5))
            .build();
    }

    #[test]
    fn f32_transport_keeps_cache_keys_stable() {
        let cfg = FlConfig::builder(TaskKind::Fashion).build();
        let s = serde_json::to_string(&cfg).unwrap();
        assert!(
            !s.contains("transport"),
            "f32 configs must serialize exactly as before quantized transport: {s}"
        );
        let quant = FlConfig::builder(TaskKind::Fashion)
            .transport(Codec::I8)
            .build();
        let s = serde_json::to_string(&quant).unwrap();
        assert!(s.contains("transport"));
        let back: FlConfig = serde_json::from_str(&s).unwrap();
        assert_eq!(quant, back);
    }

    #[test]
    fn config_serde_roundtrip() {
        let cfg = FlConfig::builder(TaskKind::Cifar)
            .defense(DefenseKind::Bulyan { f: 2 })
            .attack(AttackSpec::Lie)
            .build();
        let s = serde_json::to_string(&cfg).unwrap();
        let back: FlConfig = serde_json::from_str(&s).unwrap();
        assert_eq!(cfg, back);
    }
}
