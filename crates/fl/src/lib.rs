//! # fabflip-fl
//!
//! The federated-learning simulator and experiment runner of the `fabflip`
//! reproduction — the paper's evaluation harness (Sec. V):
//!
//! * [`FlConfig`] — the full experiment configuration (task, client
//!   population, sampling, defense, attack, heterogeneity `β`, seeds),
//! * [`simulate`] — one FL run: per round, sample `K` clients uniformly,
//!   train benign clients locally for one epoch, let the single adversary
//!   craft one malicious update submitted by every selected malicious
//!   client, aggregate under the configured defense, and evaluate,
//! * [`metrics`] — attack success rate (ASR, Eq. 4) and defense pass rate
//!   (DPR, Eq. 5),
//! * [`runner`] — repeated runs, the clean-run baseline `acc_natk`, and the
//!   cell summaries the bench harness turns into the paper's tables.
//!
//! # Examples
//!
//! ```no_run
//! use fabflip_fl::{AttackSpec, FlConfig, TaskKind, simulate};
//! use fabflip_agg::DefenseKind;
//!
//! let cfg = FlConfig::builder(TaskKind::Fashion)
//!     .rounds(10)
//!     .defense(DefenseKind::MKrum { f: 2 })
//!     .attack(AttackSpec::ZkaG { cfg: fabflip::ZkaConfig::fast() })
//!     .seed(1)
//!     .build();
//! let result = simulate(&cfg)?;
//! println!("max accuracy: {}", result.max_accuracy());
//! # Ok::<(), fabflip_fl::FlError>(())
//! ```

mod attack_spec;
pub mod checkpoint;
mod config;
mod error;
pub mod faults;
pub mod metrics;
pub mod round;
pub mod runner;
mod sim;
pub mod stream;

pub use attack_spec::AttackSpec;
pub use checkpoint::CheckpointSpec;
pub use config::{FlConfig, FlConfigBuilder, TaskKind};
pub use error::FlError;
pub use fabflip_tensor::quant::Codec;
pub use faults::{FaultPlan, StragglerPolicy};
pub use metrics::{RoundRecord, RunResult};
pub use round::{ClientFleet, RoundInput, ServerCore, StagedRound, StagedSubmission};
pub use sim::{simulate, simulate_observed, simulate_with};
pub use stream::{StreamingServer, Submit};

/// Unique per-test scratch directory under the system temp dir (pid +
/// counter, no wall clock: fabcheck's determinism rules hold even in
/// tests we control).
#[cfg(test)]
pub(crate) fn test_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static N: AtomicUsize = AtomicUsize::new(0);
    let d = std::env::temp_dir().join(format!(
        "fabflip-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&d).expect("test dir");
    d
}
