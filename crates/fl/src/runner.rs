//! Experiment runner: repeated paired runs, the clean baseline `acc_natk`,
//! and cell summaries — the machinery behind every table and figure bench.

use crate::checkpoint::CheckpointSpec;
use crate::metrics::attack_success_rate;
use crate::{simulate_with, AttackSpec, FlConfig, FlError};
use fabflip_agg::DefenseKind;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// Mean/summary of one experiment-grid cell over `repeats` paired runs
/// (the paper averages three runs, Sec. V).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellSummary {
    /// Attack label (paper column).
    pub attack: String,
    /// Defense label (paper row).
    pub defense: String,
    /// Task label.
    pub task: String,
    /// Dirichlet heterogeneity β.
    pub beta: f64,
    /// Mean clean no-attack/no-defense maximum accuracy (`acc_natk`).
    pub acc_natk: f32,
    /// Mean maximum accuracy under attack (`acc_max`, "acc" in Table II).
    pub acc_max: f32,
    /// Mean attack success rate (Eq. 4), paired per seed.
    pub asr: f32,
    /// Mean defense pass rate (Eq. 5); `None` = "NA" (statistic defenses).
    pub dpr: Option<f32>,
    /// Number of repeats averaged.
    pub repeats: usize,
}

impl CellSummary {
    /// `DPR` formatted as the paper prints it (percent or "NA").
    pub fn dpr_display(&self) -> String {
        match self.dpr {
            Some(d) => format!("{:.2}", d * 100.0),
            None => "NA".to_string(),
        }
    }
}

// BTreeMap, not HashMap: the fabcheck `nondeterministic-collection` rule
// keeps hash-iteration order out of the numeric crates wholesale, even
// where (as here) the map is only ever probed by key.
fn clean_cache() -> &'static Mutex<BTreeMap<String, f32>> {
    static CACHE: OnceLock<Mutex<BTreeMap<String, f32>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// The clean-run ceiling `acc_natk` for the given configuration: the same
/// simulation with no attack and plain FedAvg. Memoized process-wide (the
/// whole grid shares one baseline per task/β/seed/scale).
///
/// # Errors
///
/// Propagates simulation failures.
pub fn acc_natk(cfg: &FlConfig) -> Result<f32, FlError> {
    acc_natk_checkpointed(cfg, None)
}

/// [`acc_natk`] with an optional checkpoint sink: an interrupted grid run
/// resumes the clean baseline too, not just the attacked cells. Shares the
/// process-wide memo cache (checkpoint placement is not part of the cache
/// key — it cannot change the result).
///
/// # Errors
///
/// Propagates simulation and checkpoint-write failures.
pub fn acc_natk_checkpointed(
    cfg: &FlConfig,
    ckpt: Option<&CheckpointSpec>,
) -> Result<f32, FlError> {
    let mut clean = cfg.clone();
    clean.attack = AttackSpec::None;
    clean.defense = DefenseKind::FedAvg;
    let key = serde_json::to_string(&clean).expect("config serializes");
    if let Some(&v) = clean_cache().lock().expect("cache lock").get(&key) {
        return Ok(v);
    }
    let acc = simulate_with(&clean, ckpt, |_| {})?.max_accuracy();
    clean_cache().lock().expect("cache lock").insert(key, acc);
    Ok(acc)
}

/// Runs one grid cell: `repeats` paired (clean, attacked) simulations with
/// seeds `base.seed + k`, averaging `acc_natk`, `acc_max`, ASR and DPR.
///
/// # Errors
///
/// Propagates the first failing simulation.
pub fn run_cell(base: &FlConfig, repeats: usize) -> Result<CellSummary, FlError> {
    run_cell_checkpointed(base, repeats, None)
}

/// [`run_cell`] with an optional checkpoint sink. Every simulation of the
/// cell (each repeat's attacked run and its clean baseline) checkpoints
/// into the same directory; files are keyed by config fingerprint, so one
/// directory safely serves a whole grid.
///
/// # Errors
///
/// Propagates the first failing simulation or checkpoint write.
pub fn run_cell_checkpointed(
    base: &FlConfig,
    repeats: usize,
    ckpt: Option<&CheckpointSpec>,
) -> Result<CellSummary, FlError> {
    assert!(repeats > 0, "need at least one repeat");
    let mut natk_sum = 0.0f32;
    let mut accmax_sum = 0.0f32;
    let mut asr_sum = 0.0f32;
    let mut dpr_sum = 0.0f32;
    let mut dpr_count = 0usize;
    for k in 0..repeats {
        let mut cfg = base.clone();
        cfg.seed = base.seed + k as u64;
        let natk = acc_natk_checkpointed(&cfg, ckpt)?;
        let result = simulate_with(&cfg, ckpt, |_| {})?;
        let acc_max = result.max_accuracy();
        natk_sum += natk;
        accmax_sum += acc_max;
        asr_sum += attack_success_rate(natk, acc_max);
        if let Some(d) = result.dpr() {
            dpr_sum += d;
            dpr_count += 1;
        }
    }
    let n = repeats as f32;
    Ok(CellSummary {
        attack: base.attack.label().to_string(),
        defense: base.defense.label().to_string(),
        task: base.task.label().to_string(),
        beta: base.beta,
        acc_natk: natk_sum / n,
        acc_max: accmax_sum / n,
        asr: asr_sum / n,
        dpr: if dpr_count > 0 {
            Some(dpr_sum / dpr_count as f32)
        } else {
            None
        },
        repeats,
    })
}

/// Runs many cells, parallelizing across available cores, preserving input
/// order.
///
/// # Errors
///
/// Propagates the first failing cell.
pub fn run_grid(cells: &[FlConfig], repeats: usize) -> Result<Vec<CellSummary>, FlError> {
    run_grid_checkpointed(cells, repeats, None)
}

/// [`run_grid`] with an optional checkpoint sink: a grid interrupted at
/// any point (mid-cell included) resumes from the last per-run checkpoint
/// on the next invocation with the same cells and directory. Completed
/// runs are recognized by their final checkpoint and replay instantly.
///
/// # Errors
///
/// Propagates the first failing cell.
pub fn run_grid_checkpointed(
    cells: &[FlConfig],
    repeats: usize,
    ckpt: Option<&CheckpointSpec>,
) -> Result<Vec<CellSummary>, FlError> {
    // One FABFLIP_THREADS-controlled global pool drives the grid (the
    // build is a no-op if a pool already exists). With several cells in
    // flight the grid already saturates that pool, so the in-simulation
    // kernels are pinned to one thread for the duration — two nested
    // parallel levels would otherwise oversubscribe the machine.
    let _ = rayon::ThreadPoolBuilder::new()
        .num_threads(fabflip_tensor::par::max_threads())
        .build_global();
    if cells.len() > 1 && rayon::current_num_threads() > 1 {
        let inner = fabflip_tensor::par::max_threads();
        fabflip_tensor::par::set_max_threads(1);
        let out = cells
            .par_iter()
            .map(|cfg| run_cell_checkpointed(cfg, repeats, ckpt))
            .collect();
        fabflip_tensor::par::set_max_threads(inner);
        return out;
    }
    cells
        .par_iter()
        .map(|cfg| run_cell_checkpointed(cfg, repeats, ckpt))
        .collect()
}

/// Serializes summaries as pretty JSON (for `results/*.json`).
pub fn to_json(summaries: &[CellSummary]) -> String {
    serde_json::to_string_pretty(summaries).expect("summaries serialize")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaskKind;

    fn tiny(attack: AttackSpec, defense: DefenseKind) -> FlConfig {
        FlConfig::builder(TaskKind::Fashion)
            .rounds(2)
            .n_clients(10)
            .clients_per_round(6)
            .train_size(160)
            .test_size(60)
            .synth_set_size(4)
            .attack(attack)
            .defense(defense)
            .seed(11)
            .build()
    }

    #[test]
    fn acc_natk_is_memoized_and_attack_free() {
        let cfg = tiny(AttackSpec::RandomWeights, DefenseKind::Median);
        let a = acc_natk(&cfg).unwrap();
        let b = acc_natk(&cfg).unwrap();
        assert_eq!(a, b);
        // The cache must key on the *clean* config: a different attack with
        // the same task/seed hits the same entry.
        let cfg2 = tiny(AttackSpec::Lie, DefenseKind::Median);
        assert_eq!(acc_natk(&cfg2).unwrap(), a);
    }

    #[test]
    fn run_cell_produces_consistent_summary() {
        let cfg = tiny(AttackSpec::RandomWeights, DefenseKind::FedAvg);
        let s = run_cell(&cfg, 2).unwrap();
        assert_eq!(s.attack, "Random");
        assert_eq!(s.defense, "FedAvg");
        assert_eq!(s.repeats, 2);
        assert!(s.acc_natk >= s.acc_max - 1.0);
        assert!((0.0..=1.0).contains(&s.asr));
        // FedAvg exposes a selection, so DPR exists (and is 1: FedAvg keeps all).
        assert_eq!(s.dpr, Some(1.0));
    }

    #[test]
    fn statistic_defense_reports_na() {
        let cfg = tiny(AttackSpec::RandomWeights, DefenseKind::Median);
        let s = run_cell(&cfg, 1).unwrap();
        assert_eq!(s.dpr, None);
        assert_eq!(s.dpr_display(), "NA");
    }

    #[test]
    fn grid_preserves_order() {
        let cells = vec![
            tiny(AttackSpec::RandomWeights, DefenseKind::FedAvg),
            tiny(AttackSpec::None, DefenseKind::Median),
        ];
        let out = run_grid(&cells, 1).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].defense, "FedAvg");
        assert_eq!(out[1].defense, "Median");
        let json = to_json(&out);
        assert!(json.contains("acc_natk"));
    }

    #[test]
    fn checkpointed_grid_resumes_interrupted_cells() {
        let dir = crate::test_dir("runner-grid");
        let spec = CheckpointSpec::new(&dir, 1);
        let cells = vec![
            tiny(AttackSpec::RandomWeights, DefenseKind::FedAvg),
            tiny(AttackSpec::None, DefenseKind::TrMean { trim: 1 }),
        ];
        let plain = run_grid(&cells, 1).unwrap();

        // Interrupt mid-grid: run every cell with a truncated round budget
        // (same fingerprint — it excludes `rounds`), leaving round-1
        // checkpoints behind.
        let short: Vec<FlConfig> = cells
            .iter()
            .map(|c| {
                let mut c = c.clone();
                c.rounds = 1;
                c
            })
            .collect();
        run_grid_checkpointed(&short, 1, Some(&spec)).unwrap();

        // The full grid resumes from those checkpoints and must agree with
        // the uninterrupted run exactly.
        let resumed = run_grid_checkpointed(&cells, 1, Some(&spec)).unwrap();
        assert_eq!(resumed, plain);
        std::fs::remove_dir_all(&dir).ok();
    }
}
