//! Model checkpointing: save/load the flat parameter vector of a
//! [`Sequential`] to disk.
//!
//! Format: a one-line JSON-ish ASCII header (`FABFLIP1 <count>\n`) followed
//! by `count` little-endian `f32`s. The architecture itself is code (the
//! model zoo builders), so only weights are persisted — the same contract
//! federated aggregation uses.

use crate::{NnError, Sequential};
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &str = "FABFLIP1";

/// Saves the model's parameters to `path`.
///
/// # Errors
///
/// Returns an I/O error on write failure.
pub fn save_weights<P: AsRef<Path>>(model: &mut Sequential, path: P) -> io::Result<()> {
    let params = model.flat_params();
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{MAGIC} {}", params.len())?;
    let mut bytes = Vec::with_capacity(params.len() * 4);
    for v in &params {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    f.write_all(&bytes)
}

/// Loads parameters from `path` into the model.
///
/// # Errors
///
/// Returns an I/O error on read failure or malformed files, and wraps
/// [`NnError::ParamLengthMismatch`] (as `InvalidData`) when the checkpoint
/// does not fit the model architecture.
pub fn load_weights<P: AsRef<Path>>(model: &mut Sequential, path: P) -> io::Result<()> {
    let mut f = std::fs::File::open(path)?;
    let mut buf = Vec::new();
    f.read_to_end(&mut buf)?;
    let newline = buf
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing header"))?;
    let header = std::str::from_utf8(&buf[..newline])
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 header"))?;
    let mut parts = header.split_whitespace();
    if parts.next() != Some(MAGIC) {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let count: usize = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad count"))?;
    let body = &buf[newline + 1..];
    if body.len() != count * 4 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "expected {} bytes of weights, got {}",
                count * 4,
                body.len()
            ),
        ));
    }
    let params: Vec<f32> = body
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    model.set_flat_params(&params).map_err(|e: NnError| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("checkpoint does not fit model: {e}"),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{models, Dense};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("fabflip-ckpt-{}-{name}", std::process::id()))
    }

    #[test]
    fn roundtrip_preserves_every_weight() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = models::fashion_cnn(&mut rng);
        let original = model.flat_params();
        let path = tmp("a.bin");
        save_weights(&mut model, &path).unwrap();
        // Scramble, then restore.
        let scrambled = vec![9.0f32; original.len()];
        model.set_flat_params(&scrambled).unwrap();
        load_weights(&mut model, &path).unwrap();
        assert_eq!(model.flat_params(), original);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_mismatched_architecture() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut big = models::fashion_cnn(&mut rng);
        let path = tmp("b.bin");
        save_weights(&mut big, &path).unwrap();
        let mut small = Sequential::new();
        small.push(Dense::new(2, 2, &mut rng));
        let err = load_weights(&mut small, &path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_corrupt_files() {
        let path = tmp("c.bin");
        std::fs::write(&path, b"NOTAMAGIC 5\n0123").unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = Sequential::new();
        m.push(Dense::new(2, 2, &mut rng));
        assert!(load_weights(&mut m, &path).is_err());
        std::fs::write(&path, b"FABFLIP1 3\n0123").unwrap(); // wrong byte count
        assert!(load_weights(&mut m, &path).is_err());
        std::fs::write(&path, b"no newline at all").unwrap();
        assert!(load_weights(&mut m, &path).is_err());
        std::fs::remove_file(path).ok();
    }
}
