//! The model zoo of the paper's evaluation (Sec. V-A):
//!
//! * [`fashion_cnn`] — the Fashion-MNIST classifier: 2 convolutional layers
//!   and 1 densely-connected layer,
//! * [`cifar_cnn`] — the CIFAR-10 classifier: 6 convolutional layers and
//!   2 densely-connected layers,
//! * [`tcnn_generator`] — the ZKA-G generator: a light-weight transposed-CNN
//!   of two transposed convolutions and one convolution (WGAN-style),
//! * [`filter_layer`] — the single trainable convolution of ZKA-R that maps
//!   the static random image `A` to the synthetic image `B`.

use crate::{
    Conv2d, ConvTranspose2d, Dense, Flatten, MaxPool2d, Relu, Reshape, Sequential, Sigmoid,
};
use rand::Rng;

/// The Fashion-MNIST-scale classifier of the paper: input `[N, 1, 28, 28]`,
/// 2 conv layers + 1 dense layer, 10 logits.
///
/// ```
/// # use rand::{rngs::StdRng, SeedableRng};
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut m = fabflip_nn::models::fashion_cnn(&mut rng);
/// let y = m.forward(&fabflip_tensor::Tensor::zeros(vec![1, 1, 28, 28])).unwrap();
/// assert_eq!(y.shape(), &[1, 10]);
/// ```
pub fn fashion_cnn<R: Rng + ?Sized>(rng: &mut R) -> Sequential {
    let mut m = Sequential::new();
    m.push(Conv2d::new(1, 8, 3, 1, 1, rng));
    m.push(Relu::new());
    m.push(MaxPool2d::new(2)); // 28 -> 14
    m.push(Conv2d::new(8, 16, 3, 1, 1, rng));
    m.push(Relu::new());
    m.push(MaxPool2d::new(2)); // 14 -> 7
    m.push(Flatten::new());
    m.push(Dense::new(16 * 7 * 7, 10, rng));
    m
}

/// The CIFAR-10-scale classifier of the paper: input `[N, 3, 32, 32]`,
/// 6 conv layers + 2 dense layers, 10 logits. Channel counts are kept
/// modest so the full evaluation grid runs on a single CPU core.
pub fn cifar_cnn<R: Rng + ?Sized>(rng: &mut R) -> Sequential {
    let mut m = Sequential::new();
    m.push(Conv2d::new(3, 8, 3, 1, 1, rng));
    m.push(Relu::new());
    m.push(Conv2d::new(8, 8, 3, 1, 1, rng));
    m.push(Relu::new());
    m.push(MaxPool2d::new(2)); // 32 -> 16
    m.push(Conv2d::new(8, 16, 3, 1, 1, rng));
    m.push(Relu::new());
    m.push(Conv2d::new(16, 16, 3, 1, 1, rng));
    m.push(Relu::new());
    m.push(MaxPool2d::new(2)); // 16 -> 8
    m.push(Conv2d::new(16, 24, 3, 1, 1, rng));
    m.push(Relu::new());
    m.push(Conv2d::new(24, 24, 3, 1, 1, rng));
    m.push(Relu::new());
    m.push(MaxPool2d::new(2)); // 8 -> 4
    m.push(Flatten::new());
    m.push(Dense::new(24 * 4 * 4, 48, rng));
    m.push(Relu::new());
    m.push(Dense::new(48, 10, rng));
    m
}

/// The ZKA-G generator (Sec. IV-C): noise vector `z ∈ R^{z_dim}` →
/// dense stem → reshape → two transposed convolutions → one convolution →
/// sigmoid image in `[0, 1]` of shape `[channels, height, width]`.
///
/// # Panics
///
/// Panics when `height` or `width` is not a multiple of 4 (the two ×2
/// upsampling stages require it).
pub fn tcnn_generator<R: Rng + ?Sized>(
    z_dim: usize,
    channels: usize,
    height: usize,
    width: usize,
    rng: &mut R,
) -> Sequential {
    assert!(
        height.is_multiple_of(4) && width.is_multiple_of(4),
        "generator needs H, W divisible by 4"
    );
    let (h0, w0) = (height / 4, width / 4);
    let stem = 32usize;
    let mut g = Sequential::new();
    g.push(Dense::new(z_dim, stem * h0 * w0, rng));
    g.push(Relu::new());
    g.push(Reshape::new(stem, h0, w0));
    g.push(ConvTranspose2d::new(stem, 16, 4, 2, 1, rng)); // ×2
    g.push(Relu::new());
    g.push(ConvTranspose2d::new(16, 8, 4, 2, 1, rng)); // ×2
    g.push(Relu::new());
    g.push(Conv2d::new(8, channels, 3, 1, 1, rng));
    g.push(Sigmoid::new());
    g
}

/// The ZKA-R filter layer (Sec. IV-B): a single `channels → channels`
/// convolution with square kernel `j × j` and "same" padding, so the
/// synthetic image `B` has the size of the real images. A sigmoid keeps
/// pixels in `[0, 1]` like the benign data.
///
/// # Panics
///
/// Panics when `j` is even (no symmetric "same" padding exists).
pub fn filter_layer<R: Rng + ?Sized>(channels: usize, j: usize, rng: &mut R) -> Sequential {
    assert!(j % 2 == 1, "filter kernel must be odd for same-size output");
    let mut f = Sequential::new();
    f.push(Conv2d::new(channels, channels, j, 1, (j - 1) / 2, rng));
    f.push(Sigmoid::new());
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabflip_tensor::Tensor;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn fashion_cnn_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = fashion_cnn(&mut rng);
        let y = m.forward(&Tensor::zeros(vec![2, 1, 28, 28])).unwrap();
        assert_eq!(y.shape(), &[2, 10]);
    }

    #[test]
    fn cifar_cnn_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = cifar_cnn(&mut rng);
        let y = m.forward(&Tensor::zeros(vec![1, 3, 32, 32])).unwrap();
        assert_eq!(y.shape(), &[1, 10]);
    }

    #[test]
    fn generator_produces_images_in_unit_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut g = tcnn_generator(16, 1, 28, 28, &mut rng);
        let z = Tensor::normal(vec![3, 16], 0.0, 1.0, &mut rng);
        let imgs = g.forward(&z).unwrap();
        assert_eq!(imgs.shape(), &[3, 1, 28, 28]);
        assert!(imgs.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn generator_cifar_geometry() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut g = tcnn_generator(16, 3, 32, 32, &mut rng);
        let z = Tensor::normal(vec![2, 16], 0.0, 1.0, &mut rng);
        let imgs = g.forward(&z).unwrap();
        assert_eq!(imgs.shape(), &[2, 3, 32, 32]);
    }

    #[test]
    fn filter_layer_preserves_size() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut f = filter_layer(1, 3, &mut rng);
        let a = Tensor::uniform(vec![1, 1, 28, 28], 0.0, 1.0, &mut rng);
        let b = f.forward(&a).unwrap();
        assert_eq!(b.shape(), a.shape());
        assert!(b.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn filter_layer_rejects_even_kernel() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = filter_layer(1, 4, &mut rng);
    }

    #[test]
    fn models_are_trainable_end_to_end() {
        // One SGD step on fashion_cnn must reduce loss on a fixed batch.
        use crate::losses::softmax_cross_entropy_hard;
        let mut rng = StdRng::seed_from_u64(7);
        let mut m = fashion_cnn(&mut rng);
        let x = Tensor::uniform(vec![4, 1, 28, 28], 0.0, 1.0, &mut rng);
        let labels = [0usize, 1, 2, 3];
        let mut losses = Vec::new();
        for _ in 0..8 {
            let loss = m
                .train_step(&x, 0.05, |logits| {
                    softmax_cross_entropy_hard(logits, &labels)
                })
                .unwrap();
            losses.push(loss);
        }
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "loss not decreasing: {losses:?}"
        );
    }
}
