use crate::{Layer, NnError};
use fabflip_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Inverted dropout: during training, zeroes each activation with
/// probability `p` and scales the survivors by `1/(1−p)`; in evaluation
/// mode it is the identity.
///
/// The layer owns a seeded RNG so whole-model runs stay deterministic
/// (a requirement of the FL simulator).
#[derive(Debug)]
pub struct Dropout {
    p: f32,
    training: bool,
    rng: StdRng,
    mask: Option<Vec<bool>>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`, seeded RNG.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f32, seed: u64) -> Dropout {
        assert!(
            (0.0..1.0).contains(&p),
            "drop probability must be in [0, 1)"
        );
        Dropout {
            p,
            training: true,
            rng: StdRng::seed_from_u64(seed),
            mask: None,
        }
    }

    /// Switches between training (dropping) and evaluation (identity) mode.
    pub fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    /// Whether the layer is in training mode.
    pub fn is_training(&self) -> bool {
        self.training
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        if !self.training || self.p == 0.0 {
            self.mask = Some(vec![true; input.len()]);
            return Ok(input.clone());
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask: Vec<bool> = (0..input.len())
            .map(|_| self.rng.gen::<f32>() < keep)
            .collect();
        let mut out = input.clone();
        for (v, &m) in out.data_mut().iter_mut().zip(&mask) {
            *v = if m { *v * scale } else { 0.0 };
        }
        self.mask = Some(mask);
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let mask = self
            .mask
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward("Dropout"))?;
        if mask.len() != grad_out.len() {
            return Err(NnError::BadInput {
                layer: "Dropout",
                detail: format!("grad len {} vs cached {}", grad_out.len(), mask.len()),
            });
        }
        if !self.training || self.p == 0.0 {
            return Ok(grad_out.clone());
        }
        let scale = 1.0 / (1.0 - self.p);
        let mut g = grad_out.clone();
        for (v, &m) in g.data_mut().iter_mut().zip(mask) {
            *v = if m { *v * scale } else { 0.0 };
        }
        Ok(g)
    }

    fn name(&self) -> &'static str {
        "Dropout"
    }

    fn set_training(&mut self, training: bool) {
        Dropout::set_training(self, training);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        d.set_training(false);
        let x = Tensor::from_vec(vec![4], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = d.forward(&x).unwrap();
        assert_eq!(y.data(), x.data());
        let g = d.backward(&x).unwrap();
        assert_eq!(g.data(), x.data());
    }

    #[test]
    fn training_mode_preserves_expectation() {
        let mut d = Dropout::new(0.3, 2);
        let x = Tensor::full(vec![20_000], 1.0);
        let y = d.forward(&x).unwrap();
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        // Dropped positions are exactly zero; kept are scaled.
        let scale = 1.0 / 0.7;
        assert!(y
            .data()
            .iter()
            .all(|&v| v == 0.0 || (v - scale).abs() < 1e-6));
    }

    #[test]
    fn backward_uses_the_same_mask() {
        let mut d = Dropout::new(0.5, 3);
        let x = Tensor::full(vec![64], 1.0);
        let y = d.forward(&x).unwrap();
        let g = d.backward(&Tensor::full(vec![64], 1.0)).unwrap();
        for (yv, gv) in y.data().iter().zip(g.data()) {
            // Forward zero ⇔ backward zero.
            assert_eq!(*yv == 0.0, *gv == 0.0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| -> Vec<f32> {
            let mut d = Dropout::new(0.5, seed);
            d.forward(&Tensor::full(vec![32], 1.0)).unwrap().into_vec()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_bad_p() {
        let _ = Dropout::new(1.0, 0);
    }
}
