use crate::{Layer, NnError};
use fabflip_tensor::Tensor;

/// A feed-forward stack of [`Layer`]s with flat parameter-vector access.
///
/// `Sequential` is the model representation used everywhere in `fabflip`:
/// federated clients train it locally, and the server-side aggregation rules
/// exchange its weights as flat `Vec<f32>` via [`Sequential::flat_params`] /
/// [`Sequential::set_flat_params`].
///
/// # Examples
///
/// ```
/// use fabflip_nn::{Dense, Relu, Sequential};
/// use fabflip_tensor::Tensor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut model = Sequential::new();
/// model.push(Dense::new(4, 8, &mut rng));
/// model.push(Relu::new());
/// model.push(Dense::new(8, 2, &mut rng));
/// let y = model.forward(&Tensor::zeros(vec![3, 4]))?;
/// assert_eq!(y.shape(), &[3, 2]);
/// let w = model.flat_params();
/// model.set_flat_params(&w)?; // round-trip
/// # Ok::<(), fabflip_nn::NnError>(())
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.layers.iter().map(|l| l.name()).collect();
        write!(f, "Sequential({names:?})")
    }
}

impl Sequential {
    /// Creates an empty model.
    pub fn new() -> Sequential {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push<L: Layer + 'static>(&mut self, layer: L) -> &mut Sequential {
        self.layers.push(Box::new(layer));
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the model has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Runs the forward pass through all layers.
    ///
    /// # Errors
    ///
    /// Propagates the first layer error.
    pub fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x)?;
        }
        Ok(x)
    }

    /// Runs the backward pass, accumulating parameter gradients, and returns
    /// the gradient with respect to the model input (needed by the ZKA
    /// attacks, which differentiate *through* the frozen global model into a
    /// generator / filter layer).
    ///
    /// # Errors
    ///
    /// Propagates layer errors (e.g. backward before forward).
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    /// Switches every layer between training and evaluation behaviour
    /// (dropout masks, batch-norm statistics).
    pub fn set_training(&mut self, training: bool) {
        for layer in &mut self.layers {
            layer.set_training(training);
        }
    }

    /// Zeroes all parameter gradients.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    /// Total number of scalar parameters.
    pub fn num_params(&mut self) -> usize {
        self.layers.iter_mut().map(|l| l.num_params()).sum()
    }

    /// Copies all parameters into one flat vector (layer order, value order).
    pub fn flat_params(&mut self) -> Vec<f32> {
        let mut out = Vec::new();
        for layer in &mut self.layers {
            layer.visit_params(&mut |p, _| out.extend_from_slice(p.data()));
        }
        out
    }

    /// Copies all gradients into one flat vector (same ordering as
    /// [`Sequential::flat_params`]).
    pub fn flat_grads(&mut self) -> Vec<f32> {
        let mut out = Vec::new();
        for layer in &mut self.layers {
            layer.visit_params(&mut |_, g| out.extend_from_slice(g.data()));
        }
        out
    }

    /// Overwrites all parameters from a flat vector.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ParamLengthMismatch`] when `flat` has the wrong
    /// length; in that case no parameter is modified.
    pub fn set_flat_params(&mut self, flat: &[f32]) -> Result<(), NnError> {
        let expected = self.num_params();
        if flat.len() != expected {
            return Err(NnError::ParamLengthMismatch {
                expected,
                actual: flat.len(),
            });
        }
        let mut offset = 0usize;
        for layer in &mut self.layers {
            layer.visit_params(&mut |p, _| {
                let n = p.len();
                p.data_mut().copy_from_slice(&flat[offset..offset + n]);
                offset += n;
            });
        }
        Ok(())
    }

    /// Adds `extra` to the accumulated gradients (flat ordering) — used to
    /// inject the ZKA distance-regularizer gradient before an SGD step.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ParamLengthMismatch`] when `extra` has the wrong
    /// length; gradients are untouched in that case.
    pub fn add_to_grads(&mut self, extra: &[f32]) -> Result<(), NnError> {
        let expected = self.num_params();
        if extra.len() != expected {
            return Err(NnError::ParamLengthMismatch {
                expected,
                actual: extra.len(),
            });
        }
        let mut offset = 0usize;
        for layer in &mut self.layers {
            layer.visit_params(&mut |_, g| {
                let n = g.len();
                for (gv, ev) in g.data_mut().iter_mut().zip(&extra[offset..offset + n]) {
                    *gv += ev;
                }
                offset += n;
            });
        }
        Ok(())
    }

    /// One plain SGD step: `w ← w − lr·g`. Gradients are left untouched;
    /// call [`Sequential::zero_grads`] before the next accumulation.
    pub fn sgd_step(&mut self, lr: f32) {
        for layer in &mut self.layers {
            layer.visit_params(&mut |p, g| {
                for (pv, gv) in p.data_mut().iter_mut().zip(g.data()) {
                    *pv -= lr * gv;
                }
            });
        }
    }

    /// Convenience: zero grads, forward, loss-grad injection via `loss_fn`,
    /// backward, step. Returns the loss.
    ///
    /// `loss_fn` maps the logits to `(loss, dL/dlogits)`.
    ///
    /// # Errors
    ///
    /// Propagates layer and loss errors.
    pub fn train_step<F>(&mut self, input: &Tensor, lr: f32, loss_fn: F) -> Result<f32, NnError>
    where
        F: FnOnce(&Tensor) -> Result<(f32, Tensor), NnError>,
    {
        self.zero_grads();
        let logits = self.forward(input)?;
        let (loss, grad) = loss_fn(&logits)?;
        self.backward(&grad)?;
        self.sgd_step(lr);
        Ok(loss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dense, Relu};
    use rand::{rngs::StdRng, SeedableRng};

    fn small_mlp(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Sequential::new();
        m.push(Dense::new(3, 5, &mut rng));
        m.push(Relu::new());
        m.push(Dense::new(5, 2, &mut rng));
        m
    }

    #[test]
    fn flat_param_roundtrip() {
        let mut m = small_mlp(1);
        let w = m.flat_params();
        assert_eq!(w.len(), 3 * 5 + 5 + 5 * 2 + 2);
        let mut w2 = w.clone();
        for v in &mut w2 {
            *v += 1.0;
        }
        m.set_flat_params(&w2).unwrap();
        assert_eq!(m.flat_params(), w2);
        assert!(m.set_flat_params(&w2[1..]).is_err());
    }

    #[test]
    fn sgd_step_moves_against_gradient() {
        let mut m = small_mlp(2);
        let x = Tensor::full(vec![1, 3], 1.0);
        let before = m.flat_params();
        m.zero_grads();
        let y = m.forward(&x).unwrap();
        let g = Tensor::full(y.shape().to_vec(), 1.0);
        m.backward(&g).unwrap();
        let grads = m.flat_grads();
        m.sgd_step(0.1);
        let after = m.flat_params();
        for ((b, a), gr) in before.iter().zip(&after).zip(&grads) {
            assert!((a - (b - 0.1 * gr)).abs() < 1e-6);
        }
    }

    #[test]
    fn add_to_grads_accumulates() {
        let mut m = small_mlp(3);
        m.zero_grads();
        let n = m.num_params();
        m.add_to_grads(&vec![2.0; n]).unwrap();
        assert!(m.flat_grads().iter().all(|&g| g == 2.0));
        assert!(m.add_to_grads(&vec![0.0; n + 1]).is_err());
    }

    #[test]
    fn train_step_reduces_loss_on_toy_problem() {
        // Regression-to-zero: loss = 0.5 * ||y||^2, grad = y.
        let mut m = small_mlp(4);
        let x = Tensor::full(vec![4, 3], 0.7);
        let mut last = f32::INFINITY;
        for _ in 0..30 {
            let loss = m
                .train_step(&x, 0.05, |y| {
                    let loss = 0.5 * y.data().iter().map(|v| v * v).sum::<f32>();
                    Ok((loss, y.clone()))
                })
                .unwrap();
            last = loss;
        }
        assert!(last < 0.05, "loss did not shrink: {last}");
    }

    #[test]
    fn set_training_reaches_mode_dependent_layers() {
        use crate::{BatchNorm2d, Conv2d, Dropout, Flatten};
        let mut rng = StdRng::seed_from_u64(9);
        let mut m = Sequential::new();
        m.push(Conv2d::new(1, 2, 3, 1, 1, &mut rng));
        m.push(BatchNorm2d::new(2));
        m.push(Relu::new());
        m.push(Flatten::new());
        m.push(Dropout::new(0.5, 3));
        m.push(Dense::new(2 * 6 * 6, 3, &mut rng));
        let x = Tensor::uniform(vec![2, 1, 6, 6], 0.0, 1.0, &mut rng);
        // Train mode: dropout makes two forwards differ.
        let a = m.forward(&x).unwrap();
        let b = m.forward(&x).unwrap();
        assert_ne!(a.data(), b.data(), "dropout inactive in training mode");
        // Eval mode: deterministic.
        m.set_training(false);
        let c = m.forward(&x).unwrap();
        let d = m.forward(&x).unwrap();
        assert_eq!(c.data(), d.data(), "eval mode must be deterministic");
        // The full stack still trains end-to-end.
        m.set_training(true);
        let labels = [0usize, 1];
        let mut last = f32::INFINITY;
        for _ in 0..10 {
            last = m
                .train_step(&x, 0.05, |lg| {
                    crate::losses::softmax_cross_entropy_hard(lg, &labels)
                })
                .unwrap();
        }
        assert!(last.is_finite());
    }

    #[test]
    fn debug_lists_layers() {
        let m = small_mlp(5);
        let s = format!("{m:?}");
        assert!(s.contains("Dense") && s.contains("Relu"));
    }
}
