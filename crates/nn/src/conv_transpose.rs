use crate::{Layer, NnError};
use fabflip_tensor::scratch::{scratch_f32, scratch_zeroed, Purpose};
use fabflip_tensor::{
    col2im, im2col, matmul_into, matmul_transpose_a, matmul_transpose_b, par, Tensor,
    PAR_FLOP_THRESHOLD,
};
use rand::Rng;

/// A 2-D transposed convolution ("deconvolution") over `[N, C, H, W]`
/// batches — the upsampling building block of the ZKA-G generator (the paper
/// uses a light-weight TCNN of two transposed convolutions and one
/// convolution, following the WGAN generator structure).
///
/// Weights are stored `[in_channels, out_channels, kh, kw]` (PyTorch
/// `ConvTranspose2d` layout). Output spatial size is
/// `(H − 1)·stride − 2·pad + kernel`.
///
/// Implementation note: the forward pass *is* the input-gradient pass of an
/// ordinary convolution, so it reuses the property-tested
/// [`col2im`]/[`im2col`] pair from `fabflip-tensor`.
#[derive(Debug)]
pub struct ConvTranspose2d {
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    cache: Option<Cache>,
    /// Per-sample weight+bias gradient stripes `[N, IC·OKK + OC]`, zeroed
    /// and reused each backward, merged in ascending sample order.
    gwb: Vec<f32>,
}

#[derive(Debug)]
struct Cache {
    input: Tensor,
    out_h: usize,
    out_w: usize,
}

impl ConvTranspose2d {
    /// Creates a transposed convolution, He-normal initialized.
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut R,
    ) -> ConvTranspose2d {
        let fan_in = (in_channels * kernel * kernel) as f32;
        let std = (2.0 / fan_in).sqrt();
        ConvTranspose2d {
            weight: Tensor::normal(
                vec![in_channels, out_channels, kernel, kernel],
                0.0,
                std,
                rng,
            ),
            bias: Tensor::zeros(vec![out_channels]),
            grad_weight: Tensor::zeros(vec![in_channels, out_channels, kernel, kernel]),
            grad_bias: Tensor::zeros(vec![out_channels]),
            in_channels,
            out_channels,
            kernel,
            stride,
            pad,
            cache: None,
            gwb: Vec::new(),
        }
    }

    /// Output spatial size for a given input spatial size:
    /// `(input − 1)·stride − 2·pad + kernel`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] when the geometry underflows.
    pub fn out_dim(&self, input: usize) -> Result<usize, NnError> {
        let grown = (input - 1) * self.stride + self.kernel;
        if grown < 2 * self.pad + 1 {
            return Err(NnError::BadInput {
                layer: "ConvTranspose2d",
                // fabcheck::allow(alloc_on_hot_path): error branch only.
                detail: format!("padding {} too large for input {input}", self.pad),
            });
        }
        Ok(grown - 2 * self.pad)
    }
}

impl Layer for ConvTranspose2d {
    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        if input.rank() != 4 || input.shape()[1] != self.in_channels {
            return Err(NnError::BadInput {
                layer: "ConvTranspose2d",
                // fabcheck::allow(alloc_on_hot_path): error branch only.
                detail: format!(
                    "expected [N, {}, H, W], got {:?}",
                    self.in_channels,
                    input.shape()
                ),
            });
        }
        let (n, _c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let oh = self.out_dim(h)?;
        let ow = self.out_dim(w)?;
        let area_in = h * w;
        let okk = self.out_channels * self.kernel * self.kernel;
        // fabcheck::allow(alloc_on_hot_path): the Layer API returns a fresh
        // output tensor — one allocation per call, not O(model) per round.
        let mut out = Tensor::zeros(vec![n, self.out_channels, oh, ow]);
        let in_sample = self.in_channels * area_in;
        let out_sample = self.out_channels * oh * ow;
        let weight = self.weight.data();
        let bias = self.bias.data();
        let (in_channels, out_channels) = (self.in_channels, self.out_channels);
        let (kernel, stride, pad) = (self.kernel, self.stride, self.pad);
        let input_data = input.data();
        // Batch-parallel: each sample owns a disjoint output slice (see the
        // determinism contract in `fabflip_tensor::par`).
        let per_sample = |i: usize, y: &mut [f32]| {
            let x = &input_data[i * in_sample..(i + 1) * in_sample];
            // col = Wᵀ [OKK, IC] · x [IC, HW]; weight stored [IC, OKK].
            // Zeroed thread-local scratch: the matmul accumulates.
            let mut col = scratch_zeroed(Purpose::ConvCol, okk * area_in);
            matmul_transpose_a(weight, x, &mut col, okk, in_channels, area_in);
            col2im(&col, y, out_channels, oh, ow, kernel, kernel, stride, pad);
            for oc in 0..out_channels {
                let b = bias[oc];
                for v in &mut y[oc * oh * ow..(oc + 1) * oh * ow] {
                    *v += b;
                }
            }
        };
        let batch_flops = 2 * (n * okk * in_channels * area_in) as u64;
        if batch_flops < PAR_FLOP_THRESHOLD || par::max_threads() == 1 {
            for (i, y) in out.data_mut().chunks_mut(out_sample).enumerate() {
                per_sample(i, y);
            }
        } else {
            par::for_each_chunk_mut(out.data_mut(), out_sample, per_sample);
        }
        self.cache = Some(Cache {
            // fabcheck::allow(alloc_on_hot_path): backward's weight gradient
            // needs the forward input — one cached clone per forward call.
            input: input.clone(),
            out_h: oh,
            out_w: ow,
        });
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let cache = self
            .cache
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward("ConvTranspose2d"))?;
        let input = &cache.input;
        let (n, _c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let (oh, ow) = (cache.out_h, cache.out_w);
        let expected = [n, self.out_channels, oh, ow];
        if grad_out.shape() != expected {
            return Err(NnError::BadInput {
                layer: "ConvTranspose2d",
                // fabcheck::allow(alloc_on_hot_path): error branch only.
                detail: format!("grad shape {:?}, expected {:?}", grad_out.shape(), expected),
            });
        }
        let area_in = h * w;
        let okk = self.out_channels * self.kernel * self.kernel;
        let in_sample = self.in_channels * area_in;
        let out_sample = self.out_channels * oh * ow;
        // fabcheck::allow(alloc_on_hot_path): fresh gradient tensor — the
        // Layer API hands ownership to the caller.
        let mut grad_in = Tensor::zeros(input.shape().to_vec());
        let weight = self.weight.data();
        let (in_channels, out_channels) = (self.in_channels, self.out_channels);
        let (kernel, stride, pad) = (self.kernel, self.stride, self.pad);
        let grad_out_data = grad_out.data();
        let input_data = input.data();
        // Batch-parallel with per-sample weight/bias contributions written
        // into per-sample stripes of one flat reusable buffer and merged in
        // ascending sample order (bitwise-identical to the serial
        // accumulation; see Conv2d::backward).
        let gw_len = in_channels * okk;
        let gwb_len = gw_len + out_channels;
        self.gwb.clear();
        // fabcheck::allow(alloc_on_hot_path): grow-only layer-owned buffer.
        self.gwb.resize(n * gwb_len, 0.0);
        let per_sample = |i: usize, gx: &mut [f32], gwb: &mut [f32]| {
            let g = &grad_out_data[i * out_sample..(i + 1) * out_sample];
            let (gw, gb) = gwb.split_at_mut(gw_len);
            for (oc, gb_v) in gb.iter_mut().enumerate() {
                // fabcheck::allow(unordered_float_reduction): serial per-channel sum over this sample's contiguous stripe
                *gb_v = g[oc * oh * ow..(oc + 1) * oh * ow].iter().sum::<f32>();
            }
            // col_g = im2col(g): [OKK, HW] — the forward conv's lowering.
            // Unspecified-contents scratch is fine: im2col writes every
            // element (padding included) before anything reads it.
            let mut col_g = scratch_f32(Purpose::Im2col, okk * area_in);
            im2col(
                g,
                &mut col_g,
                out_channels,
                oh,
                ow,
                kernel,
                kernel,
                stride,
                pad,
            );
            // grad_x = W [IC, OKK] · col_g [OKK, HW].
            matmul_into(weight, &col_g, gx, in_channels, okk, area_in);
            // grad_W contribution: x [IC, HW] · col_gᵀ [HW, OKK].
            let x = &input_data[i * in_sample..(i + 1) * in_sample];
            matmul_transpose_b(x, &col_g, gw, in_channels, area_in, okk);
        };
        let batch_flops = 4 * (n * in_channels * okk * area_in) as u64;
        if batch_flops < PAR_FLOP_THRESHOLD || par::max_threads() == 1 {
            for (i, (s, gwb)) in grad_in
                .data_mut()
                .chunks_mut(in_sample)
                .zip(self.gwb.chunks_mut(gwb_len))
                .enumerate()
            {
                per_sample(i, s, gwb);
            }
        } else {
            par::for_each_chunk_pair_mut(
                grad_in.data_mut(),
                in_sample,
                &mut self.gwb,
                gwb_len,
                per_sample,
            );
        }
        for gwb in self.gwb.chunks(gwb_len) {
            for (dst, src) in self.grad_weight.data_mut().iter_mut().zip(&gwb[..gw_len]) {
                *dst += *src;
            }
            for (dst, src) in self.grad_bias.data_mut().iter_mut().zip(&gwb[gw_len..]) {
                *dst += *src;
            }
        }
        Ok(grad_in)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.weight, &mut self.grad_weight);
        f(&mut self.bias, &mut self.grad_bias);
    }

    fn name(&self) -> &'static str {
        "ConvTranspose2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn out_dim_doubles_with_stride_2() {
        let mut rng = StdRng::seed_from_u64(0);
        let up = ConvTranspose2d::new(4, 2, 4, 2, 1, &mut rng);
        assert_eq!(up.out_dim(7).unwrap(), 14);
        assert_eq!(up.out_dim(14).unwrap(), 28);
    }

    #[test]
    fn forward_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut up = ConvTranspose2d::new(3, 2, 4, 2, 1, &mut rng);
        let x = Tensor::zeros(vec![2, 3, 7, 7]);
        let y = up.forward(&x).unwrap();
        assert_eq!(y.shape(), &[2, 2, 14, 14]);
    }

    #[test]
    fn forward_known_value_1x1() {
        // 1x1 kernel stride 1: output = w * x + b.
        let mut rng = StdRng::seed_from_u64(0);
        let mut up = ConvTranspose2d::new(1, 1, 1, 1, 0, &mut rng);
        up.weight.data_mut()[0] = 3.0;
        up.bias.data_mut()[0] = 0.5;
        let x = Tensor::from_vec(vec![1, 1, 1, 2], vec![1.0, 2.0]).unwrap();
        let y = up.forward(&x).unwrap();
        assert_eq!(y.data(), &[3.5, 6.5]);
    }

    #[test]
    fn transpose_is_adjoint_of_conv() {
        // <convT(x), y> must equal <x, conv(y)> when convT's weight equals
        // the conv's weight (same [IC(out of conv), OC, k, k] layout match).
        use crate::Conv2d;
        let mut rng = StdRng::seed_from_u64(3);
        let mut up = ConvTranspose2d::new(2, 3, 3, 2, 1, &mut rng);
        up.bias.zero_();
        // Build conv sharing the same weight: conv maps 3ch -> 2ch. The
        // transposed layer stores weights [IC_up=2, OC_up=3, k, k], which is
        // byte-identical to the conv layout [OC_conv=2, IC_conv=3, k, k]
        // because convT's forward is exactly conv's input-gradient pass.
        let mut conv = Conv2d::new(3, 2, 3, 2, 1, &mut rng);
        let k = 3usize;
        let mut uw = vec![0.0f32; 2 * 3 * k * k];
        up.visit_params(&mut |p, _| {
            if p.len() == uw.len() {
                uw.copy_from_slice(p.data());
            }
        });
        conv.visit_params(&mut |p, _| {
            if p.len() == uw.len() {
                p.data_mut().copy_from_slice(&uw);
            } else {
                p.zero_();
            }
        });
        let mut r2 = StdRng::seed_from_u64(9);
        let x = Tensor::uniform(vec![1, 2, 5, 5], -1.0, 1.0, &mut r2);
        let up_out = up.forward(&x).unwrap();
        let y = Tensor::uniform(up_out.shape().to_vec(), -1.0, 1.0, &mut r2);
        let lhs: f32 = up_out.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let conv_y = conv.forward(&y).unwrap();
        assert_eq!(conv_y.shape(), x.shape());
        let rhs: f32 = x.data().iter().zip(conv_y.data()).map(|(a, b)| a * b).sum();
        assert!(
            (lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()),
            "{lhs} vs {rhs}"
        );
    }
}
