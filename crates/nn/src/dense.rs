use crate::{Layer, NnError};
use fabflip_tensor::{matmul_into, matmul_transpose_a, matmul_transpose_b, Tensor};
use rand::Rng;

/// A fully connected layer over `[N, IN]` batches: `y = x·Wᵀ + b`.
///
/// Weights are stored `[out_features, in_features]`, He-normal initialized.
#[derive(Debug)]
pub struct Dense {
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    in_features: usize,
    out_features: usize,
    cache: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer, He-normal initialized from `rng`.
    pub fn new<R: Rng + ?Sized>(in_features: usize, out_features: usize, rng: &mut R) -> Dense {
        let std = (2.0 / in_features as f32).sqrt();
        Dense {
            weight: Tensor::normal(vec![out_features, in_features], 0.0, std, rng),
            bias: Tensor::zeros(vec![out_features]),
            grad_weight: Tensor::zeros(vec![out_features, in_features]),
            grad_bias: Tensor::zeros(vec![out_features]),
            in_features,
            out_features,
            cache: None,
        }
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        if input.rank() != 2 || input.shape()[1] != self.in_features {
            return Err(NnError::BadInput {
                layer: "Dense",
                detail: format!(
                    "expected [N, {}], got {:?}",
                    self.in_features,
                    input.shape()
                ),
            });
        }
        let n = input.shape()[0];
        let mut out = Tensor::zeros(vec![n, self.out_features]);
        // y = x (N×IN) · Wᵀ (IN×OUT), W stored (OUT×IN).
        matmul_transpose_b(
            input.data(),
            self.weight.data(),
            out.data_mut(),
            n,
            self.in_features,
            self.out_features,
        );
        for i in 0..n {
            let row = &mut out.data_mut()[i * self.out_features..(i + 1) * self.out_features];
            for (v, b) in row.iter_mut().zip(self.bias.data()) {
                *v += b;
            }
        }
        self.cache = Some(input.clone());
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let input = self
            .cache
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward("Dense"))?;
        let n = input.shape()[0];
        if grad_out.shape() != [n, self.out_features] {
            return Err(NnError::BadInput {
                layer: "Dense",
                detail: format!(
                    "grad shape {:?}, expected [{n}, {}]",
                    grad_out.shape(),
                    self.out_features
                ),
            });
        }
        // grad_W += gᵀ (OUT×N) · x (N×IN).
        matmul_transpose_a(
            grad_out.data(),
            input.data(),
            self.grad_weight.data_mut(),
            self.out_features,
            n,
            self.in_features,
        );
        // grad_b += column sums of g.
        for i in 0..n {
            let row = &grad_out.data()[i * self.out_features..(i + 1) * self.out_features];
            for (gb, &g) in self.grad_bias.data_mut().iter_mut().zip(row) {
                *gb += g;
            }
        }
        // grad_x = g (N×OUT) · W (OUT×IN).
        let mut grad_in = Tensor::zeros(vec![n, self.in_features]);
        matmul_into(
            grad_out.data(),
            self.weight.data(),
            grad_in.data_mut(),
            n,
            self.out_features,
            self.in_features,
        );
        Ok(grad_in)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.weight, &mut self.grad_weight);
        f(&mut self.bias, &mut self.grad_bias);
    }

    fn name(&self) -> &'static str {
        "Dense"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn forward_known_values() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut d = Dense::new(2, 2, &mut rng);
        d.weight.data_mut().copy_from_slice(&[1.0, 2.0, 3.0, 4.0]); // [[1,2],[3,4]]
        d.bias.data_mut().copy_from_slice(&[0.5, -0.5]);
        let x = Tensor::from_vec(vec![1, 2], vec![1.0, 1.0]).unwrap();
        let y = d.forward(&x).unwrap();
        assert_eq!(y.data(), &[3.5, 6.5]);
    }

    #[test]
    fn backward_shapes_and_grads() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut d = Dense::new(3, 2, &mut rng);
        let x = Tensor::from_vec(vec![2, 3], vec![1.0; 6]).unwrap();
        let _ = d.forward(&x).unwrap();
        let g = Tensor::from_vec(vec![2, 2], vec![1.0; 4]).unwrap();
        let gx = d.backward(&g).unwrap();
        assert_eq!(gx.shape(), &[2, 3]);
        // grad bias = column sums = [2, 2].
        assert_eq!(d.grad_bias.data(), &[2.0, 2.0]);
        // grad weight: every entry = sum over batch of x = 2.
        assert!(d.grad_weight.data().iter().all(|&v| (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn rejects_bad_input() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut d = Dense::new(3, 2, &mut rng);
        assert!(d.forward(&Tensor::zeros(vec![1, 4])).is_err());
        assert!(d.backward(&Tensor::zeros(vec![1, 2])).is_err());
    }
}
