//! Optimizers beyond the built-in plain SGD step.
//!
//! The paper's training loop is plain SGD (Eq. 1); [`Sgd`] with momentum
//! and weight decay is provided as an extension so downstream users can
//! reproduce FL variants with heavier local optimizers.

use crate::Sequential;

/// Stochastic gradient descent with optional momentum and weight decay.
///
/// State (one velocity buffer per parameter) lives in the optimizer, keyed
/// by parameter order, so the same optimizer must be reused with the same
/// model across steps.
///
/// # Examples
///
/// ```
/// use fabflip_nn::{optim::Sgd, Dense, Sequential};
/// use fabflip_tensor::Tensor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut model = Sequential::new();
/// model.push(Dense::new(4, 2, &mut rng));
/// let mut opt = Sgd::new(0.1).momentum(0.9);
/// model.zero_grads();
/// let y = model.forward(&Tensor::zeros(vec![1, 4]))?;
/// model.backward(&Tensor::full(y.shape().to_vec(), 1.0))?;
/// opt.step(&mut model);
/// # Ok::<(), fabflip_nn::NnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<f32>,
}

impl Sgd {
    /// Creates plain SGD with learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics when `lr <= 0`.
    pub fn new(lr: f32) -> Sgd {
        assert!(lr > 0.0, "learning rate must be positive");
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Enables classical momentum `v ← μv + g`.
    ///
    /// # Panics
    ///
    /// Panics when `mu` is outside `[0, 1)`.
    pub fn momentum(mut self, mu: f32) -> Sgd {
        assert!((0.0..1.0).contains(&mu), "momentum must be in [0, 1)");
        self.momentum = mu;
        self
    }

    /// Enables decoupled L2 weight decay.
    ///
    /// # Panics
    ///
    /// Panics when `wd < 0`.
    pub fn weight_decay(mut self, wd: f32) -> Sgd {
        assert!(wd >= 0.0, "weight decay must be non-negative");
        self.weight_decay = wd;
        self
    }

    /// The configured learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Applies one update step from the model's accumulated gradients.
    /// Gradients are left untouched (zero them before re-accumulating).
    pub fn step(&mut self, model: &mut Sequential) {
        let n = model.num_params();
        if self.velocity.len() != n {
            self.velocity = vec![0.0; n];
        }
        let grads = model.flat_grads();
        let mut params = model.flat_params();
        for ((p, g), v) in params.iter_mut().zip(&grads).zip(&mut self.velocity) {
            let g_eff = g + self.weight_decay * *p;
            if self.momentum > 0.0 {
                *v = self.momentum * *v + g_eff;
                *p -= self.lr * *v;
            } else {
                *p -= self.lr * g_eff;
            }
        }
        model
            .set_flat_params(&params)
            .expect("parameter count is unchanged");
    }

    /// Clears the momentum state (e.g. when re-seeding a client from a new
    /// global model).
    pub fn reset(&mut self) {
        self.velocity.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dense;
    use fabflip_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Sequential::new();
        m.push(Dense::new(3, 2, &mut rng));
        m
    }

    fn accumulate_unit_grads(m: &mut Sequential) {
        m.zero_grads();
        let y = m.forward(&Tensor::full(vec![1, 3], 1.0)).unwrap();
        m.backward(&Tensor::full(y.shape().to_vec(), 1.0)).unwrap();
    }

    #[test]
    fn plain_step_matches_builtin_sgd() {
        let mut a = model(1);
        let mut b = model(1);
        accumulate_unit_grads(&mut a);
        accumulate_unit_grads(&mut b);
        let mut opt = Sgd::new(0.05);
        opt.step(&mut a);
        b.sgd_step(0.05);
        assert_eq!(a.flat_params(), b.flat_params());
    }

    #[test]
    fn momentum_accelerates_repeated_direction() {
        // Under a constant gradient, momentum moves further after a few
        // steps than plain SGD with the same lr.
        let run = |mu: f32| -> f32 {
            let mut m = model(2);
            let start = m.flat_params();
            let mut opt = Sgd::new(0.01);
            if mu > 0.0 {
                opt = opt.momentum(mu);
            }
            for _ in 0..5 {
                accumulate_unit_grads(&mut m);
                opt.step(&mut m);
            }
            let end = m.flat_params();
            start.iter().zip(&end).map(|(a, b)| (a - b).abs()).sum()
        };
        assert!(run(0.9) > run(0.0) * 1.5);
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradients() {
        let mut m = model(3);
        let before: f32 = m.flat_params().iter().map(|v| v.abs()).sum();
        m.zero_grads();
        let mut opt = Sgd::new(0.1).weight_decay(0.5);
        for _ in 0..10 {
            opt.step(&mut m);
        }
        let after: f32 = m.flat_params().iter().map(|v| v.abs()).sum();
        assert!(after < before * 0.7, "{after} !< {before}");
    }

    #[test]
    fn reset_clears_velocity() {
        let mut m = model(4);
        let mut opt = Sgd::new(0.1).momentum(0.9);
        accumulate_unit_grads(&mut m);
        opt.step(&mut m);
        opt.reset();
        // After reset, a step with zero grads moves nothing.
        m.zero_grads();
        let before = m.flat_params();
        opt.step(&mut m);
        assert_eq!(before, m.flat_params());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_lr() {
        let _ = Sgd::new(0.0);
    }
}
