use crate::{Layer, NnError};
use fabflip_tensor::Tensor;

/// k×k average pooling with stride k over `[N, C, H, W]` batches (floor
/// semantics for trailing rows/columns, like [`crate::MaxPool2d`]).
#[derive(Debug)]
pub struct AvgPool2d {
    k: usize,
    in_shape: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// Creates an average-pooling layer with window and stride `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> AvgPool2d {
        assert!(k > 0, "pool window must be positive");
        AvgPool2d { k, in_shape: None }
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        if input.rank() != 4 {
            return Err(NnError::BadInput {
                layer: "AvgPool2d",
                detail: format!("expected rank-4 input, got {:?}", input.shape()),
            });
        }
        let (n, c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let k = self.k;
        if h < k || w < k {
            return Err(NnError::BadInput {
                layer: "AvgPool2d",
                detail: format!("input {h}x{w} smaller than window {k}"),
            });
        }
        let (oh, ow) = (h / k, w / k);
        let inv = 1.0 / (k * k) as f32;
        let mut out = Tensor::zeros(vec![n, c, oh, ow]);
        let data = input.data();
        let out_data = out.data_mut();
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                let obase = (ni * c + ci) * oh * ow;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0f32;
                        for dy in 0..k {
                            for dx in 0..k {
                                acc += data[base + (oy * k + dy) * w + (ox * k + dx)];
                            }
                        }
                        out_data[obase + oy * ow + ox] = acc * inv;
                    }
                }
            }
        }
        self.in_shape = Some(input.shape().to_vec());
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let in_shape = self
            .in_shape
            .clone()
            .ok_or(NnError::BackwardBeforeForward("AvgPool2d"))?;
        let (n, c, h, w) = (in_shape[0], in_shape[1], in_shape[2], in_shape[3]);
        let k = self.k;
        let (oh, ow) = (h / k, w / k);
        if grad_out.shape() != [n, c, oh, ow] {
            return Err(NnError::BadInput {
                layer: "AvgPool2d",
                detail: format!(
                    "grad shape {:?}, expected [{n}, {c}, {oh}, {ow}]",
                    grad_out.shape()
                ),
            });
        }
        let inv = 1.0 / (k * k) as f32;
        let mut grad_in = Tensor::zeros(in_shape);
        let gi = grad_in.data_mut();
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                let obase = (ni * c + ci) * oh * ow;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = grad_out.data()[obase + oy * ow + ox] * inv;
                        for dy in 0..k {
                            for dx in 0..k {
                                gi[base + (oy * k + dy) * w + (ox * k + dx)] += g;
                            }
                        }
                    }
                }
            }
        }
        Ok(grad_in)
    }

    fn name(&self) -> &'static str {
        "AvgPool2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_averages_windows() {
        let mut p = AvgPool2d::new(2);
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = p.forward(&x).unwrap();
        assert_eq!(y.data(), &[2.5]);
    }

    #[test]
    fn backward_spreads_gradient_evenly() {
        let mut p = AvgPool2d::new(2);
        let x = Tensor::zeros(vec![1, 1, 2, 2]);
        let _ = p.forward(&x).unwrap();
        let g = Tensor::from_vec(vec![1, 1, 1, 1], vec![4.0]).unwrap();
        let gx = p.backward(&g).unwrap();
        assert_eq!(gx.data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn rejects_small_input_and_early_backward() {
        let mut p = AvgPool2d::new(3);
        assert!(p.forward(&Tensor::zeros(vec![1, 1, 2, 2])).is_err());
        assert!(p.backward(&Tensor::zeros(vec![1, 1, 1, 1])).is_err());
    }
}
