//! Loss functions. All losses return `(scalar_loss, dL/dlogits)` in one
//! call; the gradient is already averaged over the batch so callers can feed
//! it straight into [`crate::Sequential::backward`].
//!
//! The soft-target variant exists because ZKA-R (Sec. IV-B of the paper)
//! minimizes the cross-entropy between the global model's prediction and the
//! *uniform* distribution `Y_D = [1/L, …, 1/L]`, and ZKA-G (Sec. IV-C)
//! *maximizes* the cross-entropy to a one-hot class, which is implemented as
//! minimizing its negation via [`softmax_cross_entropy_hard_negated`].

use crate::NnError;
use fabflip_tensor::Tensor;

/// Numerically stable row-wise softmax of a `[N, L]` logits tensor.
pub fn softmax(logits: &Tensor) -> Tensor {
    let n = logits.shape()[0];
    let l = logits.shape()[1];
    let mut out = logits.clone();
    for i in 0..n {
        let row = &mut out.data_mut()[i * l..(i + 1) * l];
        let max = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

fn check_logits(
    logits: &Tensor,
    n_expected: usize,
    op: &'static str,
) -> Result<(usize, usize), NnError> {
    if logits.rank() != 2 {
        return Err(NnError::BadInput {
            layer: op,
            detail: format!("logits must be [N, L], got {:?}", logits.shape()),
        });
    }
    let (n, l) = (logits.shape()[0], logits.shape()[1]);
    if n != n_expected {
        return Err(NnError::BadInput {
            layer: op,
            detail: format!("batch {n} vs {n_expected} targets"),
        });
    }
    Ok((n, l))
}

/// Cross-entropy with integer class labels.
///
/// Returns the mean loss over the batch and `dL/dlogits = (softmax − onehot)/N`.
///
/// # Errors
///
/// Returns [`NnError::BadInput`] for non-matrix logits, mismatched label
/// counts, or an out-of-range label.
pub fn softmax_cross_entropy_hard(
    logits: &Tensor,
    labels: &[usize],
) -> Result<(f32, Tensor), NnError> {
    let (n, l) = check_logits(logits, labels.len(), "cross_entropy_hard")?;
    let mut probs = softmax(logits);
    let mut loss = 0.0f32;
    for (i, &y) in labels.iter().enumerate() {
        if y >= l {
            return Err(NnError::BadInput {
                layer: "cross_entropy_hard",
                detail: format!("label {y} out of range for {l} classes"),
            });
        }
        let p = probs.data()[i * l + y].max(1e-12);
        loss -= p.ln();
        probs.data_mut()[i * l + y] -= 1.0;
    }
    let inv = 1.0 / n as f32;
    probs.scale_in_place(inv);
    Ok((loss * inv, probs))
}

/// *Negated* cross-entropy with integer labels: minimizing this loss
/// **maximizes** the ordinary cross-entropy — the ZKA-G generator objective
/// `max_θ F(w(t), (S, Ỹ))`.
///
/// # Errors
///
/// Same conditions as [`softmax_cross_entropy_hard`].
pub fn softmax_cross_entropy_hard_negated(
    logits: &Tensor,
    labels: &[usize],
) -> Result<(f32, Tensor), NnError> {
    let (loss, grad) = softmax_cross_entropy_hard(logits, labels)?;
    Ok((-loss, grad.scale(-1.0)))
}

/// Cross-entropy against per-sample target *distributions* (`[N, L]` rows
/// summing to 1) — used by ZKA-R with the uniform target `Y_D`.
///
/// # Errors
///
/// Returns [`NnError::BadInput`] on shape mismatch.
pub fn softmax_cross_entropy_soft(
    logits: &Tensor,
    targets: &Tensor,
) -> Result<(f32, Tensor), NnError> {
    if logits.shape() != targets.shape() {
        return Err(NnError::BadInput {
            layer: "cross_entropy_soft",
            detail: format!(
                "logits {:?} vs targets {:?}",
                logits.shape(),
                targets.shape()
            ),
        });
    }
    let (n, _l) = check_logits(logits, logits.shape()[0], "cross_entropy_soft")?;
    let mut probs = softmax(logits);
    let mut loss = 0.0f32;
    for (p, &t) in probs.data().iter().zip(targets.data()) {
        if t > 0.0 {
            loss -= t * p.max(1e-12).ln();
        }
    }
    for (p, &t) in probs.data_mut().iter_mut().zip(targets.data()) {
        *p -= t;
    }
    let inv = 1.0 / n as f32;
    probs.scale_in_place(inv);
    Ok((loss * inv, probs))
}

/// Fraction of rows whose argmax equals the label.
///
/// # Panics
///
/// Panics when `labels.len()` differs from the logits batch size.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    let n = logits.shape()[0];
    assert_eq!(n, labels.len(), "accuracy: batch mismatch");
    if n == 0 {
        return 0.0;
    }
    let l = logits.shape()[1];
    let mut correct = 0usize;
    for (i, &y) in labels.iter().enumerate() {
        let row = &logits.data()[i * l..(i + 1) * l];
        let mut best = 0usize;
        let mut best_v = f32::NEG_INFINITY;
        for (j, &v) in row.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = j;
            }
        }
        if best == y {
            correct += 1;
        }
    }
    correct as f32 / n as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]).unwrap();
        let p = softmax(&logits);
        for i in 0..2 {
            let s: f32 = p.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = Tensor::from_vec(vec![1, 2], vec![1000.0, 1001.0]).unwrap();
        let p = softmax(&a);
        assert!(p.data().iter().all(|v| v.is_finite()));
        let b = Tensor::from_vec(vec![1, 2], vec![0.0, 1.0]).unwrap();
        let q = softmax(&b);
        for (x, y) in p.data().iter().zip(q.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn hard_ce_perfect_prediction_has_low_loss() {
        let logits = Tensor::from_vec(vec![1, 3], vec![10.0, -10.0, -10.0]).unwrap();
        let (loss, _) = softmax_cross_entropy_hard(&logits, &[0]).unwrap();
        assert!(loss < 1e-3);
        let (loss_wrong, _) = softmax_cross_entropy_hard(&logits, &[1]).unwrap();
        assert!(loss_wrong > 5.0);
    }

    #[test]
    fn hard_ce_gradient_sums_to_zero_per_row() {
        let logits =
            Tensor::from_vec(vec![2, 4], vec![0.3, -0.2, 1.0, 0.5, 2.0, 0.0, -1.0, 0.1]).unwrap();
        let (_, g) = softmax_cross_entropy_hard(&logits, &[2, 0]).unwrap();
        for i in 0..2 {
            let s: f32 = g.data()[i * 4..(i + 1) * 4].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn hard_ce_rejects_bad_labels() {
        let logits = Tensor::zeros(vec![1, 3]);
        assert!(softmax_cross_entropy_hard(&logits, &[3]).is_err());
        assert!(softmax_cross_entropy_hard(&logits, &[0, 1]).is_err());
    }

    #[test]
    fn negated_ce_flips_sign() {
        let logits = Tensor::from_vec(vec![1, 3], vec![0.5, 0.1, -0.3]).unwrap();
        let (l1, g1) = softmax_cross_entropy_hard(&logits, &[1]).unwrap();
        let (l2, g2) = softmax_cross_entropy_hard_negated(&logits, &[1]).unwrap();
        assert!((l1 + l2).abs() < 1e-6);
        for (a, b) in g1.data().iter().zip(g2.data()) {
            assert!((a + b).abs() < 1e-7);
        }
    }

    #[test]
    fn soft_ce_uniform_target_minimized_by_uniform_logits() {
        // With uniform target, equal logits give loss ln(L) — the minimum.
        let uniform = Tensor::full(vec![1, 4], 0.25);
        let eq = Tensor::zeros(vec![1, 4]);
        let (loss_eq, grad_eq) = softmax_cross_entropy_soft(&eq, &uniform).unwrap();
        assert!((loss_eq - (4.0f32).ln()).abs() < 1e-5);
        assert!(grad_eq.data().iter().all(|g| g.abs() < 1e-6));
        let skew = Tensor::from_vec(vec![1, 4], vec![3.0, 0.0, 0.0, 0.0]).unwrap();
        let (loss_skew, _) = softmax_cross_entropy_soft(&skew, &uniform).unwrap();
        assert!(loss_skew > loss_eq);
    }

    #[test]
    fn soft_ce_matches_hard_for_onehot_targets() {
        let logits = Tensor::from_vec(vec![2, 3], vec![0.2, -1.0, 0.7, 1.5, 0.1, -0.4]).unwrap();
        let onehot = Tensor::from_vec(vec![2, 3], vec![0.0, 0.0, 1.0, 1.0, 0.0, 0.0]).unwrap();
        let (lh, gh) = softmax_cross_entropy_hard(&logits, &[2, 0]).unwrap();
        let (ls, gs) = softmax_cross_entropy_soft(&logits, &onehot).unwrap();
        assert!((lh - ls).abs() < 1e-6);
        for (a, b) in gh.data().iter().zip(gs.data()) {
            assert!((a - b).abs() < 1e-7);
        }
    }

    #[test]
    fn accuracy_counts_correct_rows() {
        let logits = Tensor::from_vec(vec![2, 2], vec![0.9, 0.1, 0.2, 0.8]).unwrap();
        assert_eq!(accuracy(&logits, &[0, 1]), 1.0);
        assert_eq!(accuracy(&logits, &[1, 1]), 0.5);
    }
}
