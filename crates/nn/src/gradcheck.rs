//! Finite-difference gradient checks for every layer type.
//!
//! For a scalar loss `L(model(x)) = Σ c_i · y_i` with fixed random
//! coefficients `c`, the analytic gradients (both parameter gradients and
//! the input gradient) must match `(L(w + εe) − L(w − εe)) / 2ε`.

use crate::losses::{softmax_cross_entropy_hard, softmax_cross_entropy_soft};
use crate::{
    Conv2d, ConvTranspose2d, Dense, LeakyRelu, MaxPool2d, Relu, Sequential, Sigmoid, Tanh,
};
use fabflip_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Loss = Σ c_i y_i; returns (loss, dL/dy = c).
fn weighted_sum_loss(y: &Tensor, coeffs: &[f32]) -> (f32, Tensor) {
    let loss: f32 = y.data().iter().zip(coeffs).map(|(a, b)| a * b).sum();
    let grad = Tensor::from_vec(y.shape().to_vec(), coeffs.to_vec())
        .expect("loss-gradient tensor must match the output shape");
    (loss, grad)
}

/// Checks parameter and input gradients of `model` at input `x`.
fn check_model(model: &mut Sequential, x: &Tensor, tol: f32) {
    let mut rng = StdRng::seed_from_u64(99);
    let y0 = model
        .forward(x)
        .expect("forward pass failed during gradient check");
    let coeffs: Vec<f32> = Tensor::uniform(vec![y0.len()], -1.0, 1.0, &mut rng).into_vec();

    // Analytic gradients.
    model.zero_grads();
    let y = model
        .forward(x)
        .expect("forward pass failed during gradient check");
    let (_, gy) = weighted_sum_loss(&y, &coeffs);
    let gx = model
        .backward(&gy)
        .expect("backward pass failed during gradient check");
    let analytic_pg = model.flat_grads();
    let w0 = model.flat_params();

    let eps = 1e-2f32;
    // Parameter gradients: probe a subset of coordinates for speed.
    let n = w0.len();
    let stride = (n / 24).max(1);
    for i in (0..n).step_by(stride) {
        let mut wp = w0.clone();
        wp[i] += eps;
        model
            .set_flat_params(&wp)
            .expect("flat param vector must round-trip through the model");
        let yp = model
            .forward(x)
            .expect("forward pass failed at perturbed parameters");
        let lp: f32 = yp.data().iter().zip(&coeffs).map(|(a, b)| a * b).sum();
        let mut wm = w0.clone();
        wm[i] -= eps;
        model
            .set_flat_params(&wm)
            .expect("flat param vector must round-trip through the model");
        let ym = model
            .forward(x)
            .expect("forward pass failed at perturbed parameters");
        let lm: f32 = ym.data().iter().zip(&coeffs).map(|(a, b)| a * b).sum();
        let numeric = (lp - lm) / (2.0 * eps);
        let analytic = analytic_pg[i];
        assert!(
            (numeric - analytic).abs() < tol * (1.0 + numeric.abs().max(analytic.abs())),
            "param grad {i}: numeric {numeric} vs analytic {analytic}"
        );
    }
    model
        .set_flat_params(&w0)
        .expect("restoring the original parameters must succeed");

    // Input gradients: probe a subset of pixels.
    let m = x.len();
    let stride = (m / 16).max(1);
    for i in (0..m).step_by(stride) {
        let mut xp = x.clone();
        xp.data_mut()[i] += eps;
        let yp = model
            .forward(&xp)
            .expect("forward pass failed at perturbed input");
        let lp: f32 = yp.data().iter().zip(&coeffs).map(|(a, b)| a * b).sum();
        let mut xm = x.clone();
        xm.data_mut()[i] -= eps;
        let ym = model
            .forward(&xm)
            .expect("forward pass failed at perturbed input");
        let lm: f32 = ym.data().iter().zip(&coeffs).map(|(a, b)| a * b).sum();
        let numeric = (lp - lm) / (2.0 * eps);
        let analytic = gx.data()[i];
        assert!(
            (numeric - analytic).abs() < tol * (1.0 + numeric.abs().max(analytic.abs())),
            "input grad {i}: numeric {numeric} vs analytic {analytic}"
        );
    }
}

fn rand_input(shape: Vec<usize>, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::uniform(shape, -1.0, 1.0, &mut rng)
}

#[test]
fn gradcheck_dense() {
    let mut rng = StdRng::seed_from_u64(0);
    let mut m = Sequential::new();
    m.push(Dense::new(5, 4, &mut rng));
    check_model(&mut m, &rand_input(vec![3, 5], 1), 2e-2);
}

#[test]
fn gradcheck_conv() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut m = Sequential::new();
    m.push(Conv2d::new(2, 3, 3, 1, 1, &mut rng));
    check_model(&mut m, &rand_input(vec![2, 2, 5, 5], 2), 2e-2);
}

#[test]
fn gradcheck_conv_stride2_nopad() {
    let mut rng = StdRng::seed_from_u64(2);
    let mut m = Sequential::new();
    m.push(Conv2d::new(1, 2, 3, 2, 0, &mut rng));
    check_model(&mut m, &rand_input(vec![1, 1, 7, 7], 3), 2e-2);
}

#[test]
fn gradcheck_conv_transpose() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut m = Sequential::new();
    m.push(ConvTranspose2d::new(3, 2, 4, 2, 1, &mut rng));
    check_model(&mut m, &rand_input(vec![2, 3, 4, 4], 4), 2e-2);
}

#[test]
fn gradcheck_activations_stack() {
    let mut rng = StdRng::seed_from_u64(4);
    let mut m = Sequential::new();
    m.push(Dense::new(6, 6, &mut rng));
    m.push(Tanh::new());
    m.push(Dense::new(6, 6, &mut rng));
    m.push(Sigmoid::new());
    m.push(Dense::new(6, 3, &mut rng));
    m.push(LeakyRelu::new(0.1));
    check_model(&mut m, &rand_input(vec![2, 6], 5), 3e-2);
}

#[test]
fn gradcheck_pool_conv_stack() {
    // ReLU/MaxPool are only piecewise differentiable; shift inputs away from
    // kinks by using a smooth-ish random input and modest epsilon.
    let mut rng = StdRng::seed_from_u64(5);
    let mut m = Sequential::new();
    m.push(Conv2d::new(1, 4, 3, 1, 1, &mut rng));
    m.push(Relu::new());
    m.push(MaxPool2d::new(2));
    m.push(crate::Flatten::new());
    m.push(Dense::new(4 * 3 * 3, 5, &mut rng));
    check_model(&mut m, &rand_input(vec![1, 1, 6, 6], 6), 5e-2);
}

#[test]
fn gradcheck_cross_entropy_hard() {
    // Verify the loss gradient itself through a dense layer.
    let mut rng = StdRng::seed_from_u64(6);
    let mut m = Sequential::new();
    m.push(Dense::new(4, 3, &mut rng));
    let x = rand_input(vec![2, 4], 7);
    let labels = [1usize, 2];

    m.zero_grads();
    let logits = m
        .forward(&x)
        .expect("forward pass failed during gradient check");
    let (_, g) = softmax_cross_entropy_hard(&logits, &labels)
        .expect("hard-label cross-entropy rejected well-shaped logits");
    m.backward(&g)
        .expect("backward pass failed during gradient check");
    let analytic = m.flat_grads();
    let w0 = m.flat_params();

    let eps = 1e-2f32;
    for i in 0..w0.len() {
        let mut wp = w0.clone();
        wp[i] += eps;
        m.set_flat_params(&wp)
            .expect("flat param vector must round-trip through the model");
        let fwd = m
            .forward(&x)
            .expect("forward pass failed at perturbed parameters");
        let (lp, _) = softmax_cross_entropy_hard(&fwd, &labels)
            .expect("hard-label cross-entropy rejected well-shaped logits");
        let mut wm = w0.clone();
        wm[i] -= eps;
        m.set_flat_params(&wm)
            .expect("flat param vector must round-trip through the model");
        let fwd = m
            .forward(&x)
            .expect("forward pass failed at perturbed parameters");
        let (lm, _) = softmax_cross_entropy_hard(&fwd, &labels)
            .expect("hard-label cross-entropy rejected well-shaped logits");
        let numeric = (lp - lm) / (2.0 * eps);
        assert!(
            (numeric - analytic[i]).abs() < 2e-2 * (1.0 + numeric.abs()),
            "ce grad {i}: {numeric} vs {}",
            analytic[i]
        );
    }
}

#[test]
fn gradcheck_cross_entropy_soft_uniform_target() {
    // The exact ZKA-R objective: CE against the uniform distribution.
    let mut rng = StdRng::seed_from_u64(8);
    let mut m = Sequential::new();
    m.push(Dense::new(4, 5, &mut rng));
    let x = rand_input(vec![2, 4], 9);
    let target = Tensor::full(vec![2, 5], 0.2);

    m.zero_grads();
    let logits = m
        .forward(&x)
        .expect("forward pass failed during gradient check");
    let (_, g) = softmax_cross_entropy_soft(&logits, &target)
        .expect("soft-target cross-entropy rejected well-shaped logits");
    m.backward(&g)
        .expect("backward pass failed during gradient check");
    let analytic = m.flat_grads();
    let w0 = m.flat_params();

    let eps = 1e-2f32;
    for i in (0..w0.len()).step_by(3) {
        let mut wp = w0.clone();
        wp[i] += eps;
        m.set_flat_params(&wp)
            .expect("flat param vector must round-trip through the model");
        let fwd = m
            .forward(&x)
            .expect("forward pass failed at perturbed parameters");
        let (lp, _) = softmax_cross_entropy_soft(&fwd, &target)
            .expect("soft-target cross-entropy rejected well-shaped logits");
        let mut wm = w0.clone();
        wm[i] -= eps;
        m.set_flat_params(&wm)
            .expect("flat param vector must round-trip through the model");
        let fwd = m
            .forward(&x)
            .expect("forward pass failed at perturbed parameters");
        let (lm, _) = softmax_cross_entropy_soft(&fwd, &target)
            .expect("soft-target cross-entropy rejected well-shaped logits");
        let numeric = (lp - lm) / (2.0 * eps);
        assert!(
            (numeric - analytic[i]).abs() < 2e-2 * (1.0 + numeric.abs()),
            "soft ce grad {i}: {numeric} vs {}",
            analytic[i]
        );
    }
}
