use crate::{Layer, NnError};
use fabflip_tensor::Tensor;

/// Flattens `[N, …]` to `[N, F]` (keeps the batch axis).
#[derive(Debug, Default)]
pub struct Flatten {
    in_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Flatten {
        Flatten::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        if input.rank() < 2 {
            return Err(NnError::BadInput {
                layer: "Flatten",
                detail: format!("expected rank >= 2, got {:?}", input.shape()),
            });
        }
        self.in_shape = Some(input.shape().to_vec());
        let n = input.shape()[0];
        let f: usize = input.shape()[1..].iter().product();
        Ok(input.reshape(vec![n, f])?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let shape = self
            .in_shape
            .clone()
            .ok_or(NnError::BackwardBeforeForward("Flatten"))?;
        Ok(grad_out.reshape(shape)?)
    }

    fn name(&self) -> &'static str {
        "Flatten"
    }
}

/// Reshapes `[N, F]` to `[N, c, h, w]` — used between the dense stem and the
/// transposed convolutions of the ZKA-G generator.
#[derive(Debug)]
pub struct Reshape {
    target: [usize; 3],
}

impl Reshape {
    /// Creates a reshape to per-sample shape `[c, h, w]`.
    pub fn new(c: usize, h: usize, w: usize) -> Reshape {
        Reshape { target: [c, h, w] }
    }
}

impl Layer for Reshape {
    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let n = input.shape()[0];
        let [c, h, w] = self.target;
        Ok(input.reshape(vec![n, c, h, w])?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let n = grad_out.shape()[0];
        let f: usize = grad_out.shape()[1..].iter().product();
        Ok(grad_out.reshape(vec![n, f])?)
    }

    fn name(&self) -> &'static str {
        "Reshape"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::zeros(vec![2, 3, 4, 5]);
        let y = f.forward(&x).unwrap();
        assert_eq!(y.shape(), &[2, 60]);
        let gx = f.backward(&y).unwrap();
        assert_eq!(gx.shape(), &[2, 3, 4, 5]);
    }

    #[test]
    fn reshape_roundtrip() {
        let mut r = Reshape::new(3, 2, 2);
        let x = Tensor::zeros(vec![4, 12]);
        let y = r.forward(&x).unwrap();
        assert_eq!(y.shape(), &[4, 3, 2, 2]);
        let gx = r.backward(&y).unwrap();
        assert_eq!(gx.shape(), &[4, 12]);
    }

    #[test]
    fn reshape_rejects_bad_size() {
        let mut r = Reshape::new(3, 2, 2);
        assert!(r.forward(&Tensor::zeros(vec![1, 13])).is_err());
    }
}
