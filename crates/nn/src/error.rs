use fabflip_tensor::TensorError;
use std::fmt;

/// Error type for neural-network operations.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// A tensor-level operation failed (shape/rank/geometry).
    Tensor(TensorError),
    /// A layer received an input whose shape it cannot process.
    BadInput {
        /// Layer name, e.g. `"Conv2d"`.
        layer: &'static str,
        /// Human-readable description of the problem.
        detail: String,
    },
    /// `backward` was called before `forward` populated the layer cache.
    BackwardBeforeForward(&'static str),
    /// A flat parameter buffer had the wrong length.
    ParamLengthMismatch {
        /// Expected number of parameters.
        expected: usize,
        /// Provided number of values.
        actual: usize,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::BadInput { layer, detail } => {
                write!(f, "bad input to `{layer}`: {detail}")
            }
            NnError::BackwardBeforeForward(layer) => {
                write!(f, "`{layer}` backward called before forward")
            }
            NnError::ParamLengthMismatch { expected, actual } => {
                write!(
                    f,
                    "flat parameter buffer of length {actual}, model has {expected}"
                )
            }
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = NnError::Tensor(TensorError::LengthMismatch {
            expected: 2,
            actual: 1,
        });
        assert!(e.to_string().contains("tensor error"));
        assert!(e.source().is_some());
        let e = NnError::BackwardBeforeForward("Conv2d");
        assert!(e.to_string().contains("Conv2d"));
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
