//! # fabflip-nn
//!
//! A minimal, pure-Rust, CPU neural-network library built for the `fabflip`
//! reproduction of *Fabricated Flips: Poisoning Federated Learning without
//! Data* (DSN 2023).
//!
//! It provides exactly the pieces the paper's experiments need:
//!
//! * convolutional classifiers for the two image tasks
//!   ([`models::fashion_cnn`], [`models::cifar_cnn`]),
//! * a transposed-convolution generator for the ZKA-G attack
//!   ([`models::tcnn_generator`]),
//! * a single trainable convolution "filter layer" for the ZKA-R attack
//!   ([`models::filter_layer`]),
//! * softmax cross-entropy with **soft targets** (ZKA-R optimizes towards the
//!   uniform distribution `Y_D = [1/L, …, 1/L]`),
//! * plain SGD, and flat parameter-vector access
//!   ([`Sequential::flat_params`] / [`Sequential::set_flat_params`]) — the
//!   representation federated aggregation rules operate on.
//!
//! Every layer implements [`Layer`] with an explicit `forward`/`backward`
//! pair; gradients are verified against finite differences in the test
//! suite.
//!
//! # Examples
//!
//! ```
//! use fabflip_nn::{models, losses::softmax_cross_entropy_hard};
//! use fabflip_tensor::Tensor;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut model = models::fashion_cnn(&mut rng);
//! let x = Tensor::zeros(vec![2, 1, 28, 28]);
//! let logits = model.forward(&x)?;
//! let (loss, grad) = fabflip_nn::losses::softmax_cross_entropy_hard(&logits, &[3, 7])?;
//! assert!(loss > 0.0);
//! model.backward(&grad)?;
//! model.sgd_step(0.1);
//! # Ok::<(), fabflip_nn::NnError>(())
//! ```

mod activations;
mod batchnorm;
pub mod checkpoint;
mod conv;
mod conv_transpose;
mod dense;
mod dropout;
mod error;
mod flatten;
mod layer;
pub mod losses;
pub mod models;
pub mod optim;
mod pool;
mod pool_avg;
mod sequential;

pub use activations::{LeakyRelu, Relu, Sigmoid, Tanh};
pub use batchnorm::BatchNorm2d;
pub use conv::Conv2d;
pub use conv_transpose::ConvTranspose2d;
pub use dense::Dense;
pub use dropout::Dropout;
pub use error::NnError;
pub use flatten::{Flatten, Reshape};
pub use layer::Layer;
pub use pool::MaxPool2d;
pub use pool_avg::AvgPool2d;
pub use sequential::Sequential;

#[cfg(test)]
mod gradcheck;
#[cfg(test)]
mod proptests;
