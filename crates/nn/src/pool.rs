use crate::{Layer, NnError};
use fabflip_tensor::Tensor;

/// 2×2 (or k×k) max pooling with stride equal to the window size, over
/// `[N, C, H, W]` batches. Trailing rows/columns that do not fill a window
/// are dropped (floor semantics), matching PyTorch defaults.
#[derive(Debug)]
pub struct MaxPool2d {
    k: usize,
    /// Flat argmax index into the input for every output element.
    argmax: Option<Vec<usize>>,
    in_shape: Option<Vec<usize>>,
    out_len: usize,
}

impl MaxPool2d {
    /// Creates a max-pooling layer with window and stride `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> MaxPool2d {
        assert!(k > 0, "pool window must be positive");
        MaxPool2d {
            k,
            argmax: None,
            in_shape: None,
            out_len: 0,
        }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        if input.rank() != 4 {
            return Err(NnError::BadInput {
                layer: "MaxPool2d",
                detail: format!("expected rank-4 input, got {:?}", input.shape()),
            });
        }
        let (n, c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let k = self.k;
        if h < k || w < k {
            return Err(NnError::BadInput {
                layer: "MaxPool2d",
                detail: format!("input {h}x{w} smaller than window {k}"),
            });
        }
        let (oh, ow) = (h / k, w / k);
        let mut out = Tensor::zeros(vec![n, c, oh, ow]);
        let mut argmax = vec![0usize; n * c * oh * ow];
        let data = input.data();
        let out_data = out.data_mut();
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                let obase = (ni * c + ci) * oh * ow;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = base + oy * k * w + ox * k;
                        for dy in 0..k {
                            for dx in 0..k {
                                let idx = base + (oy * k + dy) * w + (ox * k + dx);
                                if data[idx] > best {
                                    best = data[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        out_data[obase + oy * ow + ox] = best;
                        argmax[obase + oy * ow + ox] = best_idx;
                    }
                }
            }
        }
        self.argmax = Some(argmax);
        self.in_shape = Some(input.shape().to_vec());
        self.out_len = n * c * oh * ow;
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let argmax = self
            .argmax
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward("MaxPool2d"))?;
        let in_shape = self
            .in_shape
            .clone()
            .ok_or(NnError::BackwardBeforeForward("MaxPool2d"))?;
        if grad_out.len() != self.out_len {
            return Err(NnError::BadInput {
                layer: "MaxPool2d",
                detail: format!("grad len {} vs cached {}", grad_out.len(), self.out_len),
            });
        }
        let mut grad_in = Tensor::zeros(in_shape);
        for (g, &idx) in grad_out.data().iter().zip(argmax) {
            grad_in.data_mut()[idx] += g;
        }
        Ok(grad_in)
    }

    fn name(&self) -> &'static str {
        "MaxPool2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_picks_max_and_routes_grad() {
        let mut p = MaxPool2d::new(2);
        let x = Tensor::from_vec(
            vec![1, 1, 2, 4],
            vec![1.0, 5.0, 2.0, 0.0, 3.0, 4.0, 1.0, 8.0],
        )
        .unwrap();
        let y = p.forward(&x).unwrap();
        assert_eq!(y.shape(), &[1, 1, 1, 2]);
        assert_eq!(y.data(), &[5.0, 8.0]);
        let g = Tensor::from_vec(vec![1, 1, 1, 2], vec![10.0, 20.0]).unwrap();
        let gx = p.backward(&g).unwrap();
        assert_eq!(gx.data(), &[0.0, 10.0, 0.0, 0.0, 0.0, 0.0, 0.0, 20.0]);
    }

    #[test]
    fn odd_tail_is_dropped() {
        let mut p = MaxPool2d::new(2);
        let x = Tensor::zeros(vec![1, 1, 5, 5]);
        let y = p.forward(&x).unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
    }

    #[test]
    fn rejects_too_small_input() {
        let mut p = MaxPool2d::new(4);
        assert!(p.forward(&Tensor::zeros(vec![1, 1, 2, 2])).is_err());
    }
}
