use crate::NnError;
use fabflip_tensor::Tensor;

/// A differentiable layer with explicit forward/backward passes.
///
/// The contract mirrors classic define-by-run frameworks:
///
/// 1. `forward` consumes an input batch and caches whatever it needs,
/// 2. `backward` consumes `dL/d(output)` and returns `dL/d(input)`,
///    **accumulating** parameter gradients internally,
/// 3. [`Layer::visit_params`] exposes `(value, grad)` pairs so optimizers and
///    the federated-learning machinery can read/update weights uniformly.
///
/// This trait is used as a trait object inside [`crate::Sequential`]; it is
/// intentionally object-safe.
pub trait Layer: Send {
    /// Computes the layer output for `input`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] (or a wrapped tensor error) when the
    /// input shape is incompatible with the layer.
    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError>;

    /// Propagates `grad_out = dL/d(output)` back to `dL/d(input)`,
    /// accumulating parameter gradients.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BackwardBeforeForward`] if no forward pass cached
    /// the required activations, or a shape error if `grad_out` does not
    /// match the last forward output.
    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError>;

    /// Visits every `(parameter, gradient)` tensor pair of the layer.
    ///
    /// Layers without parameters (activations, pooling, reshapes) use the
    /// default empty implementation.
    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {}

    /// Total number of scalar parameters.
    fn num_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p, _| n += p.len());
        n
    }

    /// Sets every parameter gradient to zero.
    fn zero_grads(&mut self) {
        self.visit_params(&mut |_, g| g.zero_());
    }

    /// Short human-readable layer name, e.g. `"Conv2d"`.
    fn name(&self) -> &'static str;

    /// Switches the layer between training and evaluation behaviour.
    /// Only mode-dependent layers (dropout, batch norm) override this;
    /// the default is a no-op.
    fn set_training(&mut self, _training: bool) {}
}
