//! Element-wise activation layers: [`Relu`], [`LeakyRelu`], [`Tanh`],
//! [`Sigmoid`]. Each caches its forward output (or input mask) for the
//! backward pass.

use crate::{Layer, NnError};
use fabflip_tensor::Tensor;

/// Rectified linear unit, `max(0, x)`.
#[derive(Debug, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Relu {
        Relu::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        self.mask = Some(input.data().iter().map(|&x| x > 0.0).collect());
        Ok(input.map(|x| if x > 0.0 { x } else { 0.0 }))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let mask = self
            .mask
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward("Relu"))?;
        if mask.len() != grad_out.len() {
            return Err(NnError::BadInput {
                layer: "Relu",
                detail: format!("grad len {} vs cached {}", grad_out.len(), mask.len()),
            });
        }
        let mut g = grad_out.clone();
        for (v, &keep) in g.data_mut().iter_mut().zip(mask) {
            if !keep {
                *v = 0.0;
            }
        }
        Ok(g)
    }

    fn name(&self) -> &'static str {
        "Relu"
    }
}

/// Leaky rectified linear unit, `x > 0 ? x : slope·x`.
#[derive(Debug)]
pub struct LeakyRelu {
    slope: f32,
    mask: Option<Vec<bool>>,
}

impl LeakyRelu {
    /// Creates a leaky ReLU with the given negative-side `slope`
    /// (typically 0.01–0.2).
    pub fn new(slope: f32) -> LeakyRelu {
        LeakyRelu { slope, mask: None }
    }
}

impl Layer for LeakyRelu {
    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        self.mask = Some(input.data().iter().map(|&x| x > 0.0).collect());
        let s = self.slope;
        Ok(input.map(|x| if x > 0.0 { x } else { s * x }))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let mask = self
            .mask
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward("LeakyRelu"))?;
        if mask.len() != grad_out.len() {
            return Err(NnError::BadInput {
                layer: "LeakyRelu",
                detail: format!("grad len {} vs cached {}", grad_out.len(), mask.len()),
            });
        }
        let mut g = grad_out.clone();
        for (v, &pos) in g.data_mut().iter_mut().zip(mask) {
            if !pos {
                *v *= self.slope;
            }
        }
        Ok(g)
    }

    fn name(&self) -> &'static str {
        "LeakyRelu"
    }
}

/// Hyperbolic tangent activation.
#[derive(Debug, Default)]
pub struct Tanh {
    out: Option<Tensor>,
}

impl Tanh {
    /// Creates a tanh layer.
    pub fn new() -> Tanh {
        Tanh::default()
    }
}

impl Layer for Tanh {
    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let out = input.map(f32::tanh);
        self.out = Some(out.clone());
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let out = self
            .out
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward("Tanh"))?;
        if out.len() != grad_out.len() {
            return Err(NnError::BadInput {
                layer: "Tanh",
                detail: format!("grad len {} vs cached {}", grad_out.len(), out.len()),
            });
        }
        let mut g = grad_out.clone();
        for (v, &y) in g.data_mut().iter_mut().zip(out.data()) {
            *v *= 1.0 - y * y;
        }
        Ok(g)
    }

    fn name(&self) -> &'static str {
        "Tanh"
    }
}

/// Logistic sigmoid, `1 / (1 + e^(−x))` — used as the output of the ZKA-G
/// generator to produce images in `[0, 1]`.
#[derive(Debug, Default)]
pub struct Sigmoid {
    out: Option<Tensor>,
}

impl Sigmoid {
    /// Creates a sigmoid layer.
    pub fn new() -> Sigmoid {
        Sigmoid::default()
    }
}

impl Layer for Sigmoid {
    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let out = input.map(|x| 1.0 / (1.0 + (-x).exp()));
        self.out = Some(out.clone());
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let out = self
            .out
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward("Sigmoid"))?;
        if out.len() != grad_out.len() {
            return Err(NnError::BadInput {
                layer: "Sigmoid",
                detail: format!("grad len {} vs cached {}", grad_out.len(), out.len()),
            });
        }
        let mut g = grad_out.clone();
        for (v, &y) in g.data_mut().iter_mut().zip(out.data()) {
            *v *= y * (1.0 - y);
        }
        Ok(g)
    }

    fn name(&self) -> &'static str {
        "Sigmoid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_backward() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![4], vec![-1.0, 0.0, 2.0, -3.0]).unwrap();
        let y = r.forward(&x).unwrap();
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
        let g = Tensor::from_vec(vec![4], vec![1.0; 4]).unwrap();
        let gx = r.backward(&g).unwrap();
        assert_eq!(gx.data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn leaky_relu_passes_scaled_negatives() {
        let mut r = LeakyRelu::new(0.1);
        let x = Tensor::from_vec(vec![2], vec![-2.0, 2.0]).unwrap();
        let y = r.forward(&x).unwrap();
        assert!((y.data()[0] + 0.2).abs() < 1e-6);
        let g = Tensor::from_vec(vec![2], vec![1.0, 1.0]).unwrap();
        let gx = r.backward(&g).unwrap();
        assert!((gx.data()[0] - 0.1).abs() < 1e-6);
        assert_eq!(gx.data()[1], 1.0);
    }

    #[test]
    fn tanh_saturates() {
        let mut t = Tanh::new();
        let x = Tensor::from_vec(vec![3], vec![-10.0, 0.0, 10.0]).unwrap();
        let y = t.forward(&x).unwrap();
        assert!((y.data()[0] + 1.0).abs() < 1e-4);
        assert_eq!(y.data()[1], 0.0);
        assert!((y.data()[2] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn sigmoid_range_and_grad() {
        let mut s = Sigmoid::new();
        let x = Tensor::from_vec(vec![3], vec![-5.0, 0.0, 5.0]).unwrap();
        let y = s.forward(&x).unwrap();
        assert!(y.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!((y.data()[1] - 0.5).abs() < 1e-6);
        let g = Tensor::from_vec(vec![3], vec![1.0; 3]).unwrap();
        let gx = s.backward(&g).unwrap();
        // Max derivative at 0 is 0.25.
        assert!((gx.data()[1] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn backward_before_forward_errors() {
        assert!(Relu::new().backward(&Tensor::zeros(vec![1])).is_err());
        assert!(Tanh::new().backward(&Tensor::zeros(vec![1])).is_err());
        assert!(Sigmoid::new().backward(&Tensor::zeros(vec![1])).is_err());
        assert!(LeakyRelu::new(0.1)
            .backward(&Tensor::zeros(vec![1]))
            .is_err());
    }
}
