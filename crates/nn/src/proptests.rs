//! Property-based tests for the NN library.

use crate::losses::{softmax, softmax_cross_entropy_hard, softmax_cross_entropy_soft};
use crate::{Conv2d, Dense, Layer, Relu, Sequential};
use fabflip_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn mlp(seed: u64, d_in: usize, d_out: usize) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Sequential::new();
    m.push(Dense::new(d_in, 6, &mut rng));
    m.push(Relu::new());
    m.push(Dense::new(6, d_out, &mut rng));
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn forward_is_deterministic(seed in 0u64..500, data in proptest::collection::vec(-2.0f32..2.0, 8)) {
        let mut m = mlp(seed, 4, 3);
        let x = Tensor::from_vec(vec![2, 4], data).unwrap();
        let a = m.forward(&x).unwrap();
        let b = m.forward(&x).unwrap();
        prop_assert_eq!(a.data(), b.data());
    }

    #[test]
    fn flat_param_roundtrip_is_identity(seed in 0u64..500) {
        let mut m = mlp(seed, 5, 2);
        let w = m.flat_params();
        m.set_flat_params(&w).unwrap();
        prop_assert_eq!(m.flat_params(), w);
    }

    #[test]
    fn setting_params_changes_outputs_consistently(seed in 0u64..200, scale in 0.1f32..3.0) {
        // Scaling the last layer's weights scales the logits' spread; at
        // minimum, outputs must change when parameters change.
        let mut m = mlp(seed, 4, 3);
        let x = Tensor::full(vec![1, 4], 0.5);
        let y1 = m.forward(&x).unwrap();
        // A seed whose hidden ReLUs are all dead gives identically-zero
        // logits that stay zero under scaling (dense biases init to 0).
        prop_assume!(y1.data().iter().any(|v| v.abs() > 1e-6));
        let mut w = m.flat_params();
        for v in &mut w {
            *v *= 1.0 + scale;
        }
        m.set_flat_params(&w).unwrap();
        let y2 = m.forward(&x).unwrap();
        prop_assert_ne!(y1.data(), y2.data());
    }

    #[test]
    fn softmax_outputs_are_probabilities(rows in proptest::collection::vec(proptest::collection::vec(-30.0f32..30.0, 5), 1..5)) {
        let n = rows.len();
        let flat: Vec<f32> = rows.into_iter().flatten().collect();
        let logits = Tensor::from_vec(vec![n, 5], flat).unwrap();
        let p = softmax(&logits);
        for i in 0..n {
            let row = &p.data()[i * 5..(i + 1) * 5];
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn hard_ce_loss_is_nonnegative_and_bounded_by_logit_range(
        logits_row in proptest::collection::vec(-10.0f32..10.0, 4),
        label in 0usize..4
    ) {
        let logits = Tensor::from_vec(vec![1, 4], logits_row).unwrap();
        let (loss, grad) = softmax_cross_entropy_hard(&logits, &[label]).unwrap();
        prop_assert!(loss >= -1e-6);
        prop_assert!(loss <= 25.0); // bounded by max logit spread + ln L
        prop_assert!(grad.data().iter().all(|v| v.is_finite()));
        // Row of the gradient sums to zero.
        let s: f32 = grad.data().iter().sum();
        prop_assert!(s.abs() < 1e-5);
    }

    #[test]
    fn soft_ce_minimized_at_matching_distribution(
        logits_row in proptest::collection::vec(-3.0f32..3.0, 4)
    ) {
        // CE(softmax(x), t) with t = softmax(x) has zero gradient.
        let logits = Tensor::from_vec(vec![1, 4], logits_row).unwrap();
        let target = softmax(&logits);
        let (_, grad) = softmax_cross_entropy_soft(&logits, &target).unwrap();
        prop_assert!(grad.data().iter().all(|g| g.abs() < 1e-5));
    }

    #[test]
    fn conv_is_translation_consistent_on_interior(shift in 1usize..3) {
        // Same-padding conv commutes with translation away from borders:
        // shifting the input shifts the output (checked on interior pixels).
        let mut rng = StdRng::seed_from_u64(9);
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, &mut rng);
        let mut img = Tensor::zeros(vec![1, 1, 9, 9]);
        img.data_mut()[4 * 9 + 4] = 1.0; // impulse at center
        let y1 = conv.forward(&img).unwrap();
        let mut img2 = Tensor::zeros(vec![1, 1, 9, 9]);
        img2.data_mut()[(4 + shift) * 9 + 4] = 1.0;
        let y2 = conv.forward(&img2).unwrap();
        // Compare the response around each impulse.
        for dy in 0..3usize {
            for dx in 0..3usize {
                let a = y1.data()[(3 + dy) * 9 + (3 + dx)];
                let b = y2.data()[(3 + shift + dy) * 9 + (3 + dx)];
                prop_assert!((a - b).abs() < 1e-5, "impulse response not shift-equivariant");
            }
        }
    }
}
