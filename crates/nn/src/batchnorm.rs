use crate::{Layer, NnError};
use fabflip_tensor::Tensor;

/// Batch normalization over the channel axis of `[N, C, H, W]` batches
/// (Ioffe & Szegedy, 2015).
///
/// In training mode, activations are normalized by the batch statistics of
/// each channel and running averages are maintained; in evaluation mode
/// the running averages are used. The affine parameters `γ` (scale,
/// initialized to one) and `β` (shift, initialized to zero) are learnable
/// and travel through the flat parameter vector like every other weight,
/// so batch-normalized models aggregate federatively without special
/// casing.
#[derive(Debug)]
pub struct BatchNorm2d {
    gamma: Tensor,
    beta: Tensor,
    grad_gamma: Tensor,
    grad_beta: Tensor,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    channels: usize,
    eps: f32,
    momentum: f32,
    training: bool,
    cache: Option<Cache>,
}

#[derive(Debug)]
struct Cache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    in_shape: Vec<usize>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` feature maps.
    ///
    /// # Panics
    ///
    /// Panics when `channels == 0`.
    pub fn new(channels: usize) -> BatchNorm2d {
        assert!(channels > 0, "batch norm needs at least one channel");
        BatchNorm2d {
            gamma: Tensor::full(vec![channels], 1.0),
            beta: Tensor::zeros(vec![channels]),
            grad_gamma: Tensor::zeros(vec![channels]),
            grad_beta: Tensor::zeros(vec![channels]),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            channels,
            eps: 1e-5,
            momentum: 0.1,
            training: true,
            cache: None,
        }
    }

    /// Switches between training (batch statistics) and evaluation
    /// (running averages) mode.
    pub fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    /// Whether the layer is in training mode.
    pub fn is_training(&self) -> bool {
        self.training
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        if input.rank() != 4 || input.shape()[1] != self.channels {
            return Err(NnError::BadInput {
                layer: "BatchNorm2d",
                detail: format!(
                    "expected [N, {}, H, W], got {:?}",
                    self.channels,
                    input.shape()
                ),
            });
        }
        let (n, c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let plane = h * w;
        let m = (n * plane) as f32;
        let mut out = input.clone();
        let mut x_hat = input.clone();
        let mut inv_std = vec![0.0f32; c];
        for (ch, inv_std_ch) in inv_std.iter_mut().enumerate() {
            let (mean, var) = if self.training {
                let mut sum = 0.0f32;
                for ni in 0..n {
                    let base = (ni * c + ch) * plane;
                    // fabcheck::allow(unordered_float_reduction): serial per-plane sum in memory order
                    sum += input.data()[base..base + plane].iter().sum::<f32>();
                }
                let mean = sum / m;
                let mut var = 0.0f32;
                for ni in 0..n {
                    let base = (ni * c + ch) * plane;
                    for &v in &input.data()[base..base + plane] {
                        var += (v - mean) * (v - mean);
                    }
                }
                var /= m;
                self.running_mean[ch] =
                    (1.0 - self.momentum) * self.running_mean[ch] + self.momentum * mean;
                self.running_var[ch] =
                    (1.0 - self.momentum) * self.running_var[ch] + self.momentum * var;
                (mean, var)
            } else {
                (self.running_mean[ch], self.running_var[ch])
            };
            let istd = 1.0 / (var + self.eps).sqrt();
            *inv_std_ch = istd;
            let g = self.gamma.data()[ch];
            let b = self.beta.data()[ch];
            for ni in 0..n {
                let base = (ni * c + ch) * plane;
                for off in base..base + plane {
                    let xh = (input.data()[off] - mean) * istd;
                    x_hat.data_mut()[off] = xh;
                    out.data_mut()[off] = g * xh + b;
                }
            }
        }
        self.cache = Some(Cache {
            x_hat,
            inv_std,
            in_shape: input.shape().to_vec(),
        });
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let cache = self
            .cache
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward("BatchNorm2d"))?;
        if grad_out.shape() != cache.in_shape.as_slice() {
            return Err(NnError::BadInput {
                layer: "BatchNorm2d",
                detail: format!(
                    "grad shape {:?}, expected {:?}",
                    grad_out.shape(),
                    cache.in_shape
                ),
            });
        }
        let (n, c, h, w) = (
            cache.in_shape[0],
            cache.in_shape[1],
            cache.in_shape[2],
            cache.in_shape[3],
        );
        let plane = h * w;
        let m = (n * plane) as f32;
        let mut grad_in = Tensor::zeros(cache.in_shape.clone());
        for ch in 0..c {
            // Channel-wise reductions.
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xhat = 0.0f32;
            for ni in 0..n {
                let base = (ni * c + ch) * plane;
                for off in base..base + plane {
                    let dy = grad_out.data()[off];
                    sum_dy += dy;
                    sum_dy_xhat += dy * cache.x_hat.data()[off];
                }
            }
            self.grad_beta.data_mut()[ch] += sum_dy;
            self.grad_gamma.data_mut()[ch] += sum_dy_xhat;
            let g = self.gamma.data()[ch];
            let istd = cache.inv_std[ch];
            if self.training {
                // dx = γ·istd/m · (m·dy − Σdy − x̂·Σ(dy·x̂))
                let k = g * istd / m;
                for ni in 0..n {
                    let base = (ni * c + ch) * plane;
                    for off in base..base + plane {
                        let dy = grad_out.data()[off];
                        let xh = cache.x_hat.data()[off];
                        grad_in.data_mut()[off] = k * (m * dy - sum_dy - xh * sum_dy_xhat);
                    }
                }
            } else {
                // Eval mode: statistics are constants.
                let k = g * istd;
                for ni in 0..n {
                    let base = (ni * c + ch) * plane;
                    for off in base..base + plane {
                        grad_in.data_mut()[off] = k * grad_out.data()[off];
                    }
                }
            }
        }
        Ok(grad_in)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.gamma, &mut self.grad_gamma);
        f(&mut self.beta, &mut self.grad_beta);
    }

    fn name(&self) -> &'static str {
        "BatchNorm2d"
    }

    fn set_training(&mut self, training: bool) {
        BatchNorm2d::set_training(self, training);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normalizes_each_channel_to_zero_mean_unit_var() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut bn = BatchNorm2d::new(3);
        let x = Tensor::normal(vec![4, 3, 5, 5], 7.0, 3.0, &mut rng);
        let y = bn.forward(&x).unwrap();
        let plane = 25;
        for ch in 0..3 {
            let mut vals = Vec::new();
            for ni in 0..4 {
                let base = (ni * 3 + ch) * plane;
                vals.extend_from_slice(&y.data()[base..base + plane]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "channel {ch} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {ch} var {var}");
        }
    }

    #[test]
    fn eval_mode_uses_running_statistics() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut bn = BatchNorm2d::new(1);
        // Warm up running stats on many batches.
        for _ in 0..50 {
            let x = Tensor::normal(vec![8, 1, 4, 4], 5.0, 2.0, &mut rng);
            let _ = bn.forward(&x).unwrap();
        }
        bn.set_training(false);
        assert!(!bn.is_training());
        // In eval mode a constant input maps deterministically via the
        // running stats (≈ (5 − 5)/2 = 0).
        let x = Tensor::full(vec![1, 1, 4, 4], 5.0);
        let y = bn.forward(&x).unwrap();
        assert!(
            y.data().iter().all(|v| v.abs() < 0.2),
            "{:?}",
            &y.data()[..4]
        );
    }

    #[test]
    fn gradcheck_batchnorm_train_mode() {
        // Finite-difference check of the full train-mode backward.
        let mut rng = StdRng::seed_from_u64(2);
        let mut bn = BatchNorm2d::new(2);
        // Give gamma/beta non-trivial values.
        bn.gamma.data_mut().copy_from_slice(&[1.3, 0.7]);
        bn.beta.data_mut().copy_from_slice(&[0.2, -0.4]);
        let x = Tensor::uniform(vec![2, 2, 3, 3], -1.0, 1.0, &mut rng);
        let coeffs = Tensor::uniform(vec![2 * 2 * 3 * 3], -1.0, 1.0, &mut rng);

        let loss_of = |bn: &mut BatchNorm2d, x: &Tensor| -> f32 {
            let y = bn.forward(x).unwrap();
            y.data().iter().zip(coeffs.data()).map(|(a, b)| a * b).sum()
        };

        bn.zero_grads();
        let y = bn.forward(&x).unwrap();
        let gy = Tensor::from_vec(y.shape().to_vec(), coeffs.data().to_vec()).unwrap();
        let gx = bn.backward(&gy).unwrap();
        let g_gamma = bn.grad_gamma.data().to_vec();
        let g_beta = bn.grad_beta.data().to_vec();

        let eps = 1e-3f32;
        // Input gradient (running stats drift per forward, but with
        // momentum 0.1 the x-statistics are identical for same x).
        for i in (0..x.len()).step_by(5) {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let lp = loss_of(&mut bn, &xp);
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let lm = loss_of(&mut bn, &xm);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - gx.data()[i]).abs() < 2e-2 * (1.0 + numeric.abs()),
                "dx[{i}]: numeric {numeric} vs analytic {}",
                gx.data()[i]
            );
        }
        // Gamma / beta gradients.
        for ch in 0..2 {
            let orig = bn.gamma.data()[ch];
            bn.gamma.data_mut()[ch] = orig + eps;
            let lp = loss_of(&mut bn, &x);
            bn.gamma.data_mut()[ch] = orig - eps;
            let lm = loss_of(&mut bn, &x);
            bn.gamma.data_mut()[ch] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - g_gamma[ch]).abs() < 2e-2 * (1.0 + numeric.abs()),
                "dgamma[{ch}]: {numeric} vs {}",
                g_gamma[ch]
            );

            let orig = bn.beta.data()[ch];
            bn.beta.data_mut()[ch] = orig + eps;
            let lp = loss_of(&mut bn, &x);
            bn.beta.data_mut()[ch] = orig - eps;
            let lm = loss_of(&mut bn, &x);
            bn.beta.data_mut()[ch] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - g_beta[ch]).abs() < 2e-2 * (1.0 + numeric.abs()),
                "dbeta[{ch}]: {numeric} vs {}",
                g_beta[ch]
            );
        }
    }

    #[test]
    fn params_travel_through_flat_vector() {
        use crate::Sequential;
        let mut m = Sequential::new();
        m.push(BatchNorm2d::new(4));
        assert_eq!(m.num_params(), 8);
        let w = m.flat_params();
        assert_eq!(&w[..4], &[1.0, 1.0, 1.0, 1.0]); // gamma init
        assert_eq!(&w[4..], &[0.0, 0.0, 0.0, 0.0]); // beta init
    }

    #[test]
    fn rejects_wrong_channel_count_and_early_backward() {
        let mut bn = BatchNorm2d::new(2);
        assert!(bn.forward(&Tensor::zeros(vec![1, 3, 4, 4])).is_err());
        assert!(bn.backward(&Tensor::zeros(vec![1, 2, 4, 4])).is_err());
    }
}
