use crate::{Layer, NnError};
use fabflip_tensor::scratch::{scratch_zeroed, Purpose};
use fabflip_tensor::{
    col2im, conv_out_dim, im2col, matmul_into, matmul_transpose_a, matmul_transpose_b, par, Tensor,
    PAR_FLOP_THRESHOLD,
};
use rand::Rng;

/// A 2-D convolution layer over `[N, C, H, W]` batches.
///
/// Weights are stored `[out_channels, in_channels, kh, kw]`; the forward
/// pass lowers each sample with [`im2col`] and performs one matrix multiply.
/// Initialization is He-normal (`std = sqrt(2 / fan_in)`), appropriate for
/// the ReLU networks of the paper.
#[derive(Debug)]
pub struct Conv2d {
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    /// Input geometry from the last forward.
    cache: Option<ConvCache>,
    /// Per-sample im2col matrices from the last forward, one flat
    /// `[N, CKK·OH·OW]` buffer reused (grow-only) across rounds. `im2col`
    /// fully overwrites each sample's stripe before anything reads it.
    cols: Vec<f32>,
    /// Per-sample weight+bias gradient stripes `[N, OC·CKK + OC]`, zeroed
    /// and reused each backward, merged in ascending sample order.
    gwb: Vec<f32>,
}

#[derive(Debug)]
struct ConvCache {
    in_shape: [usize; 4],
    out_h: usize,
    out_w: usize,
}

impl Conv2d {
    /// Creates a convolution with square `kernel`, given `stride` and `pad`,
    /// He-normal initialized from `rng`.
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut R,
    ) -> Conv2d {
        let fan_in = (in_channels * kernel * kernel) as f32;
        let std = (2.0 / fan_in).sqrt();
        Conv2d {
            weight: Tensor::normal(
                vec![out_channels, in_channels, kernel, kernel],
                0.0,
                std,
                rng,
            ),
            bias: Tensor::zeros(vec![out_channels]),
            grad_weight: Tensor::zeros(vec![out_channels, in_channels, kernel, kernel]),
            grad_bias: Tensor::zeros(vec![out_channels]),
            in_channels,
            out_channels,
            kernel,
            stride,
            pad,
            cache: None,
            cols: Vec::new(),
            gwb: Vec::new(),
        }
    }

    /// Output spatial size for a given input spatial size.
    ///
    /// # Errors
    ///
    /// Propagates the geometry error when the kernel does not fit.
    pub fn out_dim(&self, input: usize) -> Result<usize, NnError> {
        Ok(conv_out_dim(input, self.kernel, self.stride, self.pad)?)
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        if input.rank() != 4 || input.shape()[1] != self.in_channels {
            return Err(NnError::BadInput {
                layer: "Conv2d",
                // fabcheck::allow(alloc_on_hot_path): error branch only.
                detail: format!(
                    "expected [N, {}, H, W], got {:?}",
                    self.in_channels,
                    input.shape()
                ),
            });
        }
        let (n, c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let oh = conv_out_dim(h, self.kernel, self.stride, self.pad)?;
        let ow = conv_out_dim(w, self.kernel, self.stride, self.pad)?;
        let ckk = c * self.kernel * self.kernel;
        let out_area = oh * ow;
        // fabcheck::allow(alloc_on_hot_path): the Layer API returns a fresh
        // output tensor — one allocation per call, not O(model) per round.
        let mut out = Tensor::zeros(vec![n, self.out_channels, oh, ow]);
        let sample_len = c * h * w;
        let out_sample_len = self.out_channels * out_area;
        let weight = self.weight.data();
        let bias = self.bias.data();
        let out_channels = self.out_channels;
        let (kernel, stride, pad) = (self.kernel, self.stride, self.pad);
        let input_data = input.data();
        // Each sample writes a disjoint output slice and its own stripe of
        // the flat im2col buffer, so the batch dimension parallelizes
        // trivially; results are merged in sample order (determinism
        // contract in `fabflip_tensor::par`). The buffer is layer-owned and
        // grow-only: steady-state rounds allocate nothing here.
        let col_len = ckk * out_area;
        // fabcheck::allow(alloc_on_hot_path): grow-only layer-owned buffer.
        self.cols.resize(n * col_len, 0.0);
        let cols = &mut self.cols;
        let per_sample = |i: usize, out_sample: &mut [f32], col: &mut [f32]| {
            let img = &input_data[i * sample_len..(i + 1) * sample_len];
            im2col(img, col, c, h, w, kernel, kernel, stride, pad);
            matmul_into(weight, col, out_sample, out_channels, ckk, out_area);
            for oc in 0..out_channels {
                let b = bias[oc];
                for v in &mut out_sample[oc * out_area..(oc + 1) * out_area] {
                    *v += b;
                }
            }
        };
        let batch_flops = 2 * (n * out_channels * ckk * out_area) as u64;
        if batch_flops < PAR_FLOP_THRESHOLD || par::max_threads() == 1 {
            for (i, (s, col)) in out
                .data_mut()
                .chunks_mut(out_sample_len)
                .zip(cols.chunks_mut(col_len))
                .enumerate()
            {
                per_sample(i, s, col);
            }
        } else {
            par::for_each_chunk_pair_mut(out.data_mut(), out_sample_len, cols, col_len, per_sample);
        }
        self.cache = Some(ConvCache {
            in_shape: [n, c, h, w],
            out_h: oh,
            out_w: ow,
        });
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let cache = self
            .cache
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward("Conv2d"))?;
        let (n, c, h, w) = (
            cache.in_shape[0],
            cache.in_shape[1],
            cache.in_shape[2],
            cache.in_shape[3],
        );
        let (oh, ow) = (cache.out_h, cache.out_w);
        let out_area = oh * ow;
        let ckk = c * self.kernel * self.kernel;
        let expected = [n, self.out_channels, oh, ow];
        if grad_out.shape() != expected {
            return Err(NnError::BadInput {
                layer: "Conv2d",
                // fabcheck::allow(alloc_on_hot_path): error branch only.
                detail: format!("grad shape {:?}, expected {:?}", grad_out.shape(), expected),
            });
        }
        // fabcheck::allow(alloc_on_hot_path): fresh gradient tensor — the
        // Layer API hands ownership to the caller.
        let mut grad_in = Tensor::zeros(cache.in_shape.to_vec());
        let sample_len = c * h * w;
        let out_sample_len = self.out_channels * out_area;
        let weight = self.weight.data();
        let out_channels = self.out_channels;
        let (kernel, stride, pad) = (self.kernel, self.stride, self.pad);
        let grad_out_data = grad_out.data();
        let col_len = ckk * out_area;
        let cols = &self.cols;
        debug_assert_eq!(cols.len(), n * col_len, "cols stale relative to cache");
        // Per-sample input gradients are disjoint; per-sample weight/bias
        // contributions go into per-sample stripes of one flat reusable
        // buffer and are summed in ascending sample order afterwards, which
        // reproduces the serial accumulation sequence bitwise (each matmul
        // adds one complete dot product per element, so "accumulate in
        // place" and "accumulate locally then merge in order" perform the
        // identical chain of additions).
        let gw_len = out_channels * ckk;
        let gwb_len = gw_len + out_channels;
        self.gwb.clear();
        // fabcheck::allow(alloc_on_hot_path): grow-only layer-owned buffer.
        self.gwb.resize(n * gwb_len, 0.0);
        let per_sample = |i: usize, gi: &mut [f32], gwb: &mut [f32]| {
            let g = &grad_out_data[i * out_sample_len..(i + 1) * out_sample_len];
            // Weight gradient: g [OC, A] · colᵀ [A, CKK]; bias gradient:
            // per-channel sums. Both land in this sample's gwb stripe.
            let (gw, gb) = gwb.split_at_mut(gw_len);
            for (oc, gb_v) in gb.iter_mut().enumerate() {
                // fabcheck::allow(unordered_float_reduction): serial per-channel sum over this sample's contiguous stripe
                *gb_v = g[oc * out_area..(oc + 1) * out_area].iter().sum::<f32>();
            }
            matmul_transpose_b(
                g,
                &cols[i * col_len..(i + 1) * col_len],
                gw,
                out_channels,
                out_area,
                ckk,
            );
            // Input gradient: Wᵀ [CKK, OC] · g [OC, A], folded back with
            // col2im. Zeroed thread-local scratch: the matmul accumulates.
            let mut grad_col = scratch_zeroed(Purpose::GradCol, col_len);
            matmul_transpose_a(weight, g, &mut grad_col, ckk, out_channels, out_area);
            col2im(&grad_col, gi, c, h, w, kernel, kernel, stride, pad);
        };
        let batch_flops = 4 * (n * out_channels * ckk * out_area) as u64;
        if batch_flops < PAR_FLOP_THRESHOLD || par::max_threads() == 1 {
            for (i, (s, gwb)) in grad_in
                .data_mut()
                .chunks_mut(sample_len)
                .zip(self.gwb.chunks_mut(gwb_len))
                .enumerate()
            {
                per_sample(i, s, gwb);
            }
        } else {
            par::for_each_chunk_pair_mut(
                grad_in.data_mut(),
                sample_len,
                &mut self.gwb,
                gwb_len,
                per_sample,
            );
        }
        for gwb in self.gwb.chunks(gwb_len) {
            for (dst, src) in self.grad_weight.data_mut().iter_mut().zip(&gwb[..gw_len]) {
                *dst += *src;
            }
            for (dst, src) in self.grad_bias.data_mut().iter_mut().zip(&gwb[gw_len..]) {
                *dst += *src;
            }
        }
        Ok(grad_in)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.weight, &mut self.grad_weight);
        f(&mut self.bias, &mut self.grad_bias);
    }

    fn name(&self) -> &'static str {
        "Conv2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn forward_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(1, 4, 3, 1, 1, &mut rng);
        let x = Tensor::zeros(vec![2, 1, 8, 8]);
        let y = conv.forward(&x).unwrap();
        assert_eq!(y.shape(), &[2, 4, 8, 8]);
        assert_eq!(conv.out_dim(8).unwrap(), 8);
    }

    #[test]
    fn forward_known_values() {
        // Identity-ish: single 1x1 kernel with weight 2, bias 1.
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, &mut rng);
        conv.weight.data_mut()[0] = 2.0;
        conv.bias.data_mut()[0] = 1.0;
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = conv.forward(&x).unwrap();
        assert_eq!(y.data(), &[3.0, 5.0, 7.0, 9.0]);
    }

    #[test]
    fn rejects_wrong_channels() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(3, 4, 3, 1, 1, &mut rng);
        let x = Tensor::zeros(vec![1, 1, 8, 8]);
        assert!(matches!(conv.forward(&x), Err(NnError::BadInput { .. })));
    }

    #[test]
    fn backward_before_forward_fails() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, &mut rng);
        let g = Tensor::zeros(vec![1, 1, 8, 8]);
        assert!(matches!(
            conv.backward(&g),
            Err(NnError::BackwardBeforeForward(_))
        ));
    }

    #[test]
    fn param_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        assert_eq!(conv.num_params(), 3 * 2 * 9 + 3);
    }
}
