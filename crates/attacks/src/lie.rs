use crate::stats::lie_z_factor;
use crate::{Attack, AttackContext, AttackError, Capabilities};
use fabflip_tensor::vecops;
use rand::rngs::StdRng;

/// The LIE attack — *A Little Is Enough* (Baruch et al., 2019).
///
/// Crafts `w_m = mean(W_b) + z · std(W_b)` per coordinate, where `W_b` are
/// the benign updates of the round (an eavesdropping oracle the paper's
/// threat-model analysis flags as unrealistic) and `z` is a fixed factor
/// chosen so the shifted value still looks like a plausible benign draw.
#[derive(Debug, Clone, Copy)]
pub struct Lie {
    z_override: Option<f32>,
}

impl Lie {
    /// Creates the attack with `z` derived from the round's worker counts
    /// via Baruch's formula, floored at [`Lie::MIN_Z`].
    pub fn new() -> Lie {
        Lie { z_override: None }
    }

    /// Creates the attack with an explicit fixed `z`.
    pub fn with_z(z: f32) -> Lie {
        Lie {
            z_override: Some(z),
        }
    }

    /// Lower bound on the derived `z`: with few selected clients Baruch's
    /// formula degenerates to 0 (the crafted update would equal the benign
    /// mean and have no effect), so implementations floor it.
    pub const MIN_Z: f32 = 0.25;
}

impl Default for Lie {
    fn default() -> Self {
        Lie::new()
    }
}

impl Attack for Lie {
    fn craft(
        &mut self,
        ctx: &AttackContext<'_>,
        _rng: &mut StdRng,
    ) -> Result<Vec<f32>, AttackError> {
        let refs = crate::types::finite_benign(ctx, "LIE", 1)?;
        let mean = vecops::mean(&refs);
        let std = vecops::std_dev(&refs);
        let z = self.z_override.unwrap_or_else(|| {
            (lie_z_factor(
                ctx.n_selected.max(2),
                ctx.n_malicious_selected.min(ctx.n_selected - 1),
            ) as f32)
                .max(Lie::MIN_Z)
        });
        let mut w = mean;
        vecops::axpy_in_place(&mut w, z, &std);
        Ok(w)
    }

    fn name(&self) -> &'static str {
        "LIE"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            needs_benign_updates: true,
            defenses_known: vec!["TRmean", "Krum", "Bulyan"],
            works_defense_unknown: true,
            needs_raw_data: false,
            handles_heterogeneity: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TaskInfo;
    use fabflip_nn::{Dense, Sequential};

    fn ctx_fixture<'a>(
        global: &'a [f32],
        benign: &'a [Vec<f32>],
        task: &'a TaskInfo,
        builder: &'a crate::ModelBuilder,
    ) -> AttackContext<'a> {
        AttackContext {
            global,
            prev_global: None,
            benign_updates: benign,
            n_selected: 10,
            n_malicious_selected: 2,
            task,
            build_model: builder,
        }
    }

    fn toy_task() -> TaskInfo {
        TaskInfo {
            channels: 1,
            height: 2,
            width: 2,
            num_classes: 2,
            synth_set_size: 4,
            local_lr: 0.1,
            local_batch: 2,
            local_epochs: 1,
        }
    }

    fn toy_builder(rng: &mut StdRng) -> Sequential {
        let mut m = Sequential::new();
        m.push(Dense::new(4, 2, rng));
        m
    }

    #[test]
    fn crafts_mean_plus_z_std() {
        let task = toy_task();
        let benign = vec![vec![0.0f32, 10.0], vec![2.0, 10.0]];
        let global = vec![0.0f32; 2];
        let ctx = ctx_fixture(&global, &benign, &task, &toy_builder);
        let mut attack = Lie::with_z(2.0);
        let mut rng = rand::SeedableRng::seed_from_u64(0);
        let w = attack.craft(&ctx, &mut rng).unwrap();
        // mean = [1, 10], std = [1, 0] → w = [3, 10].
        assert_eq!(w, vec![3.0, 10.0]);
    }

    #[test]
    fn derived_z_is_floored() {
        let task = toy_task();
        let benign = vec![vec![0.0f32, 0.0], vec![2.0, 0.0]];
        let global = vec![0.0f32; 2];
        let ctx = ctx_fixture(&global, &benign, &task, &toy_builder);
        let mut attack = Lie::new();
        let mut rng = rand::SeedableRng::seed_from_u64(0);
        let w = attack.craft(&ctx, &mut rng).unwrap();
        // n=10, m=2 → formula z = 0, floored to MIN_Z: w0 = 1 + 0.25·1.
        assert!((w[0] - (1.0 + Lie::MIN_Z)).abs() < 1e-6, "{w:?}");
    }

    #[test]
    fn requires_benign_oracle() {
        let task = toy_task();
        let global = vec![0.0f32; 2];
        let benign: Vec<Vec<f32>> = Vec::new();
        let ctx = ctx_fixture(&global, &benign, &task, &toy_builder);
        let mut rng = rand::SeedableRng::seed_from_u64(0);
        assert_eq!(
            Lie::new().craft(&ctx, &mut rng),
            Err(AttackError::NeedsBenignUpdates("LIE"))
        );
    }

    #[test]
    fn capabilities_match_table1() {
        let c = Lie::new().capabilities();
        assert!(c.needs_benign_updates);
        assert!(c.works_defense_unknown);
        assert!(!c.needs_raw_data);
        assert!(!c.handles_heterogeneity);
    }
}
