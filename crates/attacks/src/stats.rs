//! Small statistical helpers for attack parameterization.

/// Inverse of the standard normal CDF (the probit function), using
/// Acklam's rational approximation (relative error < 1.15e-9).
///
/// # Panics
///
/// Panics when `p` is not strictly inside `(0, 1)`.
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probit requires p in (0, 1), got {p}");

    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// The LIE attack's `z` factor (Baruch et al., 2019): with `n` workers of
/// which `m` are corrupted, the attacker needs
/// `s = ⌊n/2⌋ + 1 − m` benign "supporters"; `z` is the quantile such that
/// a fraction `(n − m − s)/(n − m)` of benign updates lies below the crafted
/// value.
///
/// # Panics
///
/// Panics when `m >= n` or `n == 0`.
pub fn lie_z_factor(n: usize, m: usize) -> f64 {
    assert!(n > 0 && m < n, "need at least one benign worker");
    let s = (n / 2 + 1).saturating_sub(m) as f64;
    let benign = (n - m) as f64;
    let p = ((benign - s) / benign).clamp(1e-6, 1.0 - 1e-6);
    inverse_normal_cdf(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probit_known_values() {
        assert!(inverse_normal_cdf(0.5).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.975) - 1.959964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.025) + 1.959964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.8413) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn probit_is_monotone() {
        let mut last = f64::NEG_INFINITY;
        for i in 1..100 {
            let v = inverse_normal_cdf(i as f64 / 100.0);
            assert!(v > last);
            last = v;
        }
    }

    #[test]
    #[should_panic(expected = "(0, 1)")]
    fn probit_rejects_bounds() {
        let _ = inverse_normal_cdf(0.0);
    }

    #[test]
    fn lie_z_paper_setting() {
        // n = 50 workers, m = 24 corrupted (Baruch's running example):
        // s = 2, p = (26 − 2)/26 ≈ 0.923 → z ≈ 1.43.
        let z = lie_z_factor(50, 24);
        assert!((z - 1.426).abs() < 0.02, "z = {z}");
        // Our FL setting: n = 10 selected, m = 2 malicious → s = 4,
        // p = 0.5, z = 0 (degenerate; the Lie attack floors it).
        let z = lie_z_factor(10, 2);
        assert!(z.abs() < 1e-9, "z = {z}");
        // Population-level setting: 100 clients, 20 malicious.
        let z = lie_z_factor(100, 20);
        assert!(z > 0.2 && z < 0.5, "z = {z}");
    }
}
