use fabflip_nn::NnError;
use std::fmt;

/// Error type for attack crafting.
#[derive(Debug, Clone, PartialEq)]
pub enum AttackError {
    /// The attack requires the benign-update oracle but none was provided
    /// (zero-knowledge context).
    NeedsBenignUpdates(&'static str),
    /// The attack requires local raw data but the adversary has none.
    NeedsRawData(&'static str),
    /// A neural-network operation failed while crafting the update.
    Nn(NnError),
    /// The context was inconsistent (e.g. mismatched parameter lengths).
    BadContext(String),
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::NeedsBenignUpdates(a) => {
                write!(f, "attack `{a}` requires benign updates, none available")
            }
            AttackError::NeedsRawData(a) => {
                write!(f, "attack `{a}` requires raw data, none available")
            }
            AttackError::Nn(e) => write!(f, "nn error while crafting update: {e}"),
            AttackError::BadContext(msg) => write!(f, "bad attack context: {msg}"),
        }
    }
}

impl std::error::Error for AttackError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AttackError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<NnError> for AttackError {
    fn from(e: NnError) -> Self {
        AttackError::Nn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        assert!(AttackError::NeedsBenignUpdates("lie")
            .to_string()
            .contains("lie"));
        assert!(AttackError::NeedsRawData("fang")
            .to_string()
            .contains("fang"));
        let e = AttackError::Nn(NnError::BackwardBeforeForward("Dense"));
        assert!(e.source().is_some());
        assert!(AttackError::BadContext("x".into()).source().is_none());
    }
}
