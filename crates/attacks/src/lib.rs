//! # fabflip-attacks
//!
//! The state-of-the-art baseline untargeted poisoning attacks the paper
//! compares against (Sec. III-B, V-B), plus shared attack machinery:
//!
//! * [`Lie`] — "A Little Is Enough" (Baruch et al., 2019): shift the benign
//!   mean by `z` standard deviations per coordinate,
//! * [`Fang`] — local model poisoning (Fang et al., 2020), the TRmean/Median
//!   directed-deviation variant used by the paper,
//! * [`MinMax`] — DnC Min-Max (Shejwalkar & Houmansadr, 2021): the largest
//!   perturbation whose distance to every benign update stays within the
//!   maximum benign pairwise distance,
//! * [`MinSum`] — its sum-of-distances sibling (extension; mentioned but
//!   not compared in the paper),
//! * [`RandomWeights`] — the naive strawman of Sec. IV-A (almost never
//!   passes the defenses),
//! * [`RealDataFlip`] — the "Real-data" comparator of Fig. 7: train on real
//!   images labelled with a random class `Ỹ`, with the distance loss.
//!
//! The zero-knowledge attacks themselves (ZKA-R / ZKA-G) are the paper's
//! contribution and live in the `fabflip` core crate; they implement the
//! same [`Attack`] trait.
//!
//! The [`Capabilities`] matrix reproduces Table I of the paper and is
//! unit-tested against it.

mod capabilities;
mod error;
mod fang;
mod lie;
mod minmax;
mod minsum;
mod random;
mod realdata;
pub mod stats;
pub mod trainer;
mod types;

pub use capabilities::Capabilities;
pub use error::AttackError;
pub use fang::Fang;
pub use lie::Lie;
pub use minmax::{MinMax, Perturbation};
pub use minsum::MinSum;
pub use random::RandomWeights;
pub use realdata::RealDataFlip;
pub use types::{finite_benign, Attack, AttackContext, ModelBuilder, TaskInfo};
