use crate::{Attack, AttackContext, AttackError, Capabilities, Perturbation};
use fabflip_tensor::vecops;
use rand::rngs::StdRng;

/// The Min-Sum attack (Shejwalkar & Houmansadr, NDSS 2021) — the sibling
/// of [`MinMax`] that the paper mentions as the authors' other
/// defense-unknown proposal. Instead of bounding the *maximum* distance to
/// any benign update, Min-Sum bounds the **sum** of squared distances:
///
/// `Σ_i ‖w_m − w_i‖² ≤ max_i Σ_j ‖w_i − w_j‖²`
///
/// i.e. the crafted update may not be more "cumulatively distant" than the
/// most distant benign update already is. Implemented as an extension for
/// completeness of the baseline family.
#[derive(Debug, Clone, Copy)]
pub struct MinSum {
    perturbation: Perturbation,
    gamma_init: f32,
    iterations: usize,
}

impl MinSum {
    /// Creates the attack with the default inverse-unit perturbation.
    pub fn new() -> MinSum {
        MinSum {
            perturbation: Perturbation::default(),
            gamma_init: 20.0,
            iterations: 30,
        }
    }

    /// Creates the attack with an explicit perturbation direction.
    pub fn with_perturbation(perturbation: Perturbation) -> MinSum {
        MinSum {
            perturbation,
            ..MinSum::new()
        }
    }
}

impl Default for MinSum {
    fn default() -> Self {
        MinSum::new()
    }
}

impl Attack for MinSum {
    fn craft(
        &mut self,
        ctx: &AttackContext<'_>,
        _rng: &mut StdRng,
    ) -> Result<Vec<f32>, AttackError> {
        let refs = crate::types::finite_benign(ctx, "Min-Sum", 2)?;
        let mean = vecops::mean(&refs);
        let dp = match self.perturbation {
            Perturbation::InverseUnit => vecops::scale(&vecops::unit(&mean), -1.0),
            Perturbation::InverseStd => vecops::scale(&vecops::std_dev(&refs), -1.0),
            Perturbation::InverseSign => vecops::scale(&vecops::sign(&mean), -1.0),
        };
        if vecops::l2_norm(&dp) == 0.0 {
            return Ok(mean);
        }
        let dists = vecops::pairwise_sq_distances(&refs);
        let budget = dists
            .iter()
            // fabcheck::allow(unordered_float_reduction): serial row sums then a running max, both left-to-right over slices
            .map(|row| row.iter().sum::<f32>())
            // fabcheck::allow(unordered_float_reduction): see above; f32::max fold is the same fixed-order pass
            .fold(0.0f32, f32::max);
        let fits = |gamma: f32| -> bool {
            let mut w = mean.clone();
            vecops::axpy_in_place(&mut w, gamma, &dp);
            // fabcheck::allow(unordered_float_reduction): serial sum over `refs` in slice order
            refs.iter().map(|r| vecops::sq_distance(&w, r)).sum::<f32>() <= budget
        };
        let (mut lo, mut hi) = (0.0f32, self.gamma_init);
        let mut grow = 0;
        while fits(hi) && grow < 10 {
            lo = hi;
            hi *= 2.0;
            grow += 1;
        }
        for _ in 0..self.iterations {
            let mid = 0.5 * (lo + hi);
            if fits(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let mut w = mean;
        vecops::axpy_in_place(&mut w, lo, &dp);
        Ok(w)
    }

    fn name(&self) -> &'static str {
        "Min-Sum"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            needs_benign_updates: true,
            defenses_known: vec!["Krum", "Bulyan", "TRmean", "Median", "AFA"],
            works_defense_unknown: true,
            needs_raw_data: false,
            handles_heterogeneity: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TaskInfo;
    use fabflip_nn::{Dense, Sequential};
    use rand::SeedableRng;

    fn craft(benign: &[Vec<f32>]) -> Vec<f32> {
        let task = TaskInfo {
            channels: 1,
            height: 2,
            width: 2,
            num_classes: 2,
            synth_set_size: 4,
            local_lr: 0.1,
            local_batch: 2,
            local_epochs: 1,
        };
        let builder = |rng: &mut StdRng| {
            let mut m = Sequential::new();
            m.push(Dense::new(4, 2, rng));
            m
        };
        let global = vec![0.0f32; benign[0].len()];
        let ctx = AttackContext {
            global: &global,
            prev_global: None,
            benign_updates: benign,
            n_selected: 10,
            n_malicious_selected: 2,
            task: &task,
            build_model: &builder,
        };
        let mut rng = StdRng::seed_from_u64(0);
        MinSum::new().craft(&ctx, &mut rng).unwrap()
    }

    #[test]
    fn satisfies_sum_constraint() {
        let benign = vec![
            vec![1.0f32, 0.0, 2.0],
            vec![1.2, 0.1, 1.8],
            vec![0.8, -0.1, 2.2],
            vec![1.1, 0.0, 2.1],
        ];
        let w = craft(&benign);
        let refs: Vec<&[f32]> = benign.iter().map(|u| u.as_slice()).collect();
        let budget = vecops::pairwise_sq_distances(&refs)
            .iter()
            .map(|row| row.iter().sum::<f32>())
            .fold(0.0f32, f32::max);
        let total: f32 = refs.iter().map(|r| vecops::sq_distance(&w, r)).sum();
        assert!(total <= budget * 1.01, "{total} > {budget}");
        let mean = vecops::mean(&refs);
        assert!(
            vecops::l2_distance(&w, &mean) > 1e-4,
            "no perturbation applied"
        );
    }

    #[test]
    fn min_sum_is_no_bolder_than_min_max() {
        // The sum constraint is tighter than the max constraint in this
        // geometry, so Min-Sum's deviation from the mean must not exceed
        // Min-Max's.
        let benign = vec![
            vec![1.0f32, 0.0],
            vec![1.4, 0.2],
            vec![0.6, -0.2],
            vec![1.0, 0.1],
        ];
        let w_sum = craft(&benign);
        let task = TaskInfo {
            channels: 1,
            height: 2,
            width: 2,
            num_classes: 2,
            synth_set_size: 4,
            local_lr: 0.1,
            local_batch: 2,
            local_epochs: 1,
        };
        let builder = |rng: &mut StdRng| {
            let mut m = Sequential::new();
            m.push(Dense::new(4, 2, rng));
            m
        };
        let global = vec![0.0f32; 2];
        let ctx = AttackContext {
            global: &global,
            prev_global: None,
            benign_updates: &benign,
            n_selected: 10,
            n_malicious_selected: 2,
            task: &task,
            build_model: &builder,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let w_max = crate::MinMax::new().craft(&ctx, &mut rng).unwrap();
        let refs: Vec<&[f32]> = benign.iter().map(|u| u.as_slice()).collect();
        let mean = vecops::mean(&refs);
        assert!(vecops::l2_distance(&w_sum, &mean) <= vecops::l2_distance(&w_max, &mean) * 1.05);
    }
}
