use serde::Serialize;

/// The assumption profile of an attack — the columns of Table I of the
/// paper ("Attack scenarios in the state-of-the-art").
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Capabilities {
    /// Does the attack read benign clients' updates (eavesdropping oracle)?
    pub needs_benign_updates: bool,
    /// Defenses the attack was designed against, e.g. `["TRmean", "Krum"]`.
    pub defenses_known: Vec<&'static str>,
    /// Can the attack operate without knowing the deployed defense?
    pub works_defense_unknown: bool,
    /// Does the attack require local raw (real) training data?
    pub needs_raw_data: bool,
    /// Was the attack designed/evaluated for heterogeneous data?
    pub handles_heterogeneity: bool,
}

impl Capabilities {
    /// The profile of a zero-knowledge attack (ZKA-R / ZKA-G): no benign
    /// updates, no raw data, defense-agnostic, heterogeneity-aware.
    pub fn zero_knowledge() -> Capabilities {
        Capabilities {
            needs_benign_updates: false,
            defenses_known: Vec::new(),
            works_defense_unknown: true,
            needs_raw_data: false,
            handles_heterogeneity: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_knowledge_profile() {
        let c = Capabilities::zero_knowledge();
        assert!(!c.needs_benign_updates);
        assert!(!c.needs_raw_data);
        assert!(c.works_defense_unknown);
        assert!(c.handles_heterogeneity);
    }

    #[test]
    fn serde_roundtrip() {
        let c = Capabilities::zero_knowledge();
        let s = serde_json::to_string(&c).unwrap();
        assert!(s.contains("needs_benign_updates"));
    }
}
