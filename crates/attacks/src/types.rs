use crate::{AttackError, Capabilities};
use fabflip_nn::Sequential;
use rand::rngs::StdRng;

/// Builds a freshly initialized model of the task's architecture. The
/// attack loads the global weights into it before any adversarial training.
pub type ModelBuilder = dyn Fn(&mut StdRng) -> Sequential + Send + Sync;

/// Static description of the learning task, known to every client (the
/// central server distributes the model, so architecture, image geometry
/// and class count are public — exactly the knowledge the paper grants the
/// zero-knowledge adversary).
#[derive(Debug, Clone, PartialEq)]
pub struct TaskInfo {
    /// Image channels.
    pub channels: usize,
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
    /// Number of classes `L`.
    pub num_classes: usize,
    /// Synthetic-set size `|S|` (the paper finds a size similar to benign
    /// clients' datasets works well).
    pub synth_set_size: usize,
    /// Local learning rate `η` (uniform across clients, Sec. II-A).
    pub local_lr: f32,
    /// Local mini-batch size.
    pub local_batch: usize,
    /// Local training epochs for the adversarial classifier.
    pub local_epochs: usize,
}

impl TaskInfo {
    /// Flat length of one image.
    pub fn image_len(&self) -> usize {
        self.channels * self.height * self.width
    }
}

/// Everything an attack may consult when crafting the round's malicious
/// update. Zero-knowledge attacks use only `global`, `prev_global` and
/// `task`; the baselines additionally read the benign oracle.
pub struct AttackContext<'a> {
    /// Current global model `w(t)` (flat).
    pub global: &'a [f32],
    /// Previous global model `w(t−1)`, if any (for the distance
    /// regularizer, Eq. 3).
    pub prev_global: Option<&'a [f32]>,
    /// Benign updates of this round — the oracle the baseline attacks
    /// assume. Empty for zero-knowledge attacks.
    pub benign_updates: &'a [Vec<f32>],
    /// Number of clients selected this round (`K`).
    pub n_selected: usize,
    /// Number of malicious clients among the selected (`m`).
    pub n_malicious_selected: usize,
    /// Task description.
    pub task: &'a TaskInfo,
    /// Architecture factory.
    pub build_model: &'a ModelBuilder,
}

impl std::fmt::Debug for AttackContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AttackContext")
            .field("global_len", &self.global.len())
            .field("has_prev", &self.prev_global.is_some())
            .field("benign_updates", &self.benign_updates.len())
            .field("n_selected", &self.n_selected)
            .field("n_malicious_selected", &self.n_malicious_selected)
            .finish_non_exhaustive()
    }
}

/// Filters the benign oracle down to finite updates of the expected
/// length. Oracle-dependent attacks call this first so that one diverged
/// benign client cannot poison *their* arithmetic.
///
/// # Errors
///
/// Returns [`AttackError::BadContext`] when an update has the wrong length
/// and [`AttackError::NeedsBenignUpdates`] when fewer than `min` finite
/// updates remain.
pub fn finite_benign<'a>(
    ctx: &'a AttackContext<'_>,
    attack: &'static str,
    min: usize,
) -> Result<Vec<&'a [f32]>, AttackError> {
    let mut out = Vec::with_capacity(ctx.benign_updates.len());
    for u in ctx.benign_updates {
        if u.len() != ctx.global.len() {
            return Err(AttackError::BadContext(
                "benign update length mismatch".into(),
            ));
        }
        if u.iter().all(|v| v.is_finite()) {
            out.push(u.as_slice());
        }
    }
    if out.len() < min {
        return Err(AttackError::NeedsBenignUpdates(attack));
    }
    Ok(out)
}

/// An untargeted poisoning attack. One adversarial party computes a single
/// malicious update per round; every malicious client submits it
/// (Sec. III-A).
pub trait Attack: Send {
    /// Crafts this round's malicious update (flat parameter vector).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError`] when a required capability is missing from
    /// the context or internal training fails.
    fn craft(&mut self, ctx: &AttackContext<'_>, rng: &mut StdRng)
        -> Result<Vec<f32>, AttackError>;

    /// Short name for reports, e.g. `"LIE"`.
    fn name(&self) -> &'static str;

    /// The attack's assumption profile (Table I).
    fn capabilities(&self) -> Capabilities;

    /// Serializes the attack's *transcript-relevant* mutable state for
    /// checkpointing, as an opaque word list. Stateless attacks (most of
    /// them: LIE, Fang, MinMax/MinSum, random weights) return the empty
    /// default; an attack whose crafting depends on choices made in
    /// earlier rounds (e.g. ZKA's lazily chosen flip target) must encode
    /// them here, or a resumed run would re-choose and diverge.
    fn checkpoint_state(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Restores state produced by [`Attack::checkpoint_state`]. Must
    /// accept the empty slice (fresh start) and its own encoding;
    /// unrecognized payloads are ignored rather than errors, since a
    /// checkpoint that validated its checksum can only carry a
    /// same-version encoding.
    fn restore_state(&mut self, _state: &[u64]) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabflip_nn::Dense;

    #[test]
    fn task_info_image_len() {
        let t = TaskInfo {
            channels: 3,
            height: 32,
            width: 32,
            num_classes: 10,
            synth_set_size: 50,
            local_lr: 0.05,
            local_batch: 16,
            local_epochs: 2,
        };
        assert_eq!(t.image_len(), 3072);
    }

    #[test]
    fn context_debug_is_informative() {
        let task = TaskInfo {
            channels: 1,
            height: 4,
            width: 4,
            num_classes: 2,
            synth_set_size: 4,
            local_lr: 0.1,
            local_batch: 2,
            local_epochs: 1,
        };
        let builder = |rng: &mut StdRng| {
            let mut m = Sequential::new();
            m.push(Dense::new(16, 2, rng));
            m
        };
        let global = vec![0.0f32; 34];
        let ctx = AttackContext {
            global: &global,
            prev_global: None,
            benign_updates: &[],
            n_selected: 10,
            n_malicious_selected: 2,
            task: &task,
            build_model: &builder,
        };
        let s = format!("{ctx:?}");
        assert!(s.contains("global_len: 34"));
    }
}
