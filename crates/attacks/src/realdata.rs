use crate::trainer::{train_adversarial_classifier, DistanceReg};
use crate::{Attack, AttackContext, AttackError, Capabilities};
use fabflip_data::Dataset;
use rand::rngs::StdRng;
use rand::Rng;

/// The "Real-data" comparator of Fig. 7: the adversary *does* own real
/// images (assigned under the same Dirichlet distribution as benign
/// clients) and trains the local model on them paired with one uniformly
/// chosen class `Ỹ`, using the same distance-based loss as the ZKA
/// attacks. The paper shows the ZKA synthetic data *outperforms* this
/// real-data label flip.
pub struct RealDataFlip {
    data: Dataset,
    reg: DistanceReg,
    target: Option<usize>,
}

impl std::fmt::Debug for RealDataFlip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RealDataFlip")
            .field("samples", &self.data.len())
            .field("reg", &self.reg)
            .field("target", &self.target)
            .finish()
    }
}

impl RealDataFlip {
    /// Creates the attack owning the adversary's real shard.
    pub fn new(data: Dataset, reg: DistanceReg) -> RealDataFlip {
        RealDataFlip {
            data,
            reg,
            target: None,
        }
    }

    /// The flipped target class `Ỹ` (chosen uniformly on first use, then
    /// fixed for the whole training, as in the paper).
    pub fn target(&self) -> Option<usize> {
        self.target
    }
}

impl Attack for RealDataFlip {
    fn craft(
        &mut self,
        ctx: &AttackContext<'_>,
        rng: &mut StdRng,
    ) -> Result<Vec<f32>, AttackError> {
        if self.data.is_empty() {
            return Err(AttackError::NeedsRawData("RealDataFlip"));
        }
        let target = *self
            .target
            .get_or_insert_with(|| rng.gen_range(0..ctx.task.num_classes));
        let mut model = (ctx.build_model)(rng);
        // Cap the set at |S| to match the ZKA attacks' budget.
        let n = self.data.len().min(ctx.task.synth_set_size.max(1));
        let idx: Vec<usize> = (0..n).collect();
        let batch = self.data.gather(&idx);
        let labels = vec![target; n];
        train_adversarial_classifier(
            &mut model,
            ctx.global,
            ctx.prev_global,
            &batch.images,
            &labels,
            ctx.task.local_epochs,
            ctx.task.local_lr,
            ctx.task.local_batch,
            self.reg,
            rng,
        )
    }

    fn name(&self) -> &'static str {
        "Real-data"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            needs_benign_updates: false,
            defenses_known: Vec::new(),
            works_defense_unknown: true,
            needs_raw_data: true,
            handles_heterogeneity: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TaskInfo;
    use fabflip_data::SynthSpec;
    use fabflip_nn::{models, Sequential};
    use rand::SeedableRng;

    fn fashion_task() -> TaskInfo {
        TaskInfo {
            channels: 1,
            height: 28,
            width: 28,
            num_classes: 10,
            synth_set_size: 16,
            local_lr: 0.05,
            local_batch: 8,
            local_epochs: 1,
        }
    }

    fn fashion_builder(rng: &mut StdRng) -> Sequential {
        models::fashion_cnn(rng)
    }

    #[test]
    fn crafts_an_update_of_model_size_that_differs_from_global() {
        let spec = SynthSpec::fashion_like();
        let data = Dataset::synthesize(&spec, 24, 3);
        let mut attack = RealDataFlip::new(data, DistanceReg::enabled());
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = models::fashion_cnn(&mut rng);
        let global = model.flat_params();
        let task = fashion_task();
        let ctx = AttackContext {
            global: &global,
            prev_global: None,
            benign_updates: &[],
            n_selected: 10,
            n_malicious_selected: 2,
            task: &task,
            build_model: &fashion_builder,
        };
        let w = attack.craft(&ctx, &mut rng).unwrap();
        assert_eq!(w.len(), global.len());
        assert_ne!(w, global);
        // Target fixed after first craft.
        let t1 = attack.target().unwrap();
        let _ = attack.craft(&ctx, &mut rng).unwrap();
        assert_eq!(attack.target().unwrap(), t1);
    }

    #[test]
    fn empty_shard_is_an_error() {
        let spec = SynthSpec::fashion_like();
        let data = Dataset::synthesize(&spec, 1, 3);
        // Build an empty dataset by gathering zero indices.
        let empty = {
            let b = data.gather(&[]);
            Dataset::new(b.images, b.labels, 10)
        };
        let mut attack = RealDataFlip::new(empty, DistanceReg::enabled());
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = models::fashion_cnn(&mut rng);
        let global = model.flat_params();
        let task = fashion_task();
        let ctx = AttackContext {
            global: &global,
            prev_global: None,
            benign_updates: &[],
            n_selected: 10,
            n_malicious_selected: 2,
            task: &task,
            build_model: &fashion_builder,
        };
        assert!(matches!(
            attack.craft(&ctx, &mut rng),
            Err(AttackError::NeedsRawData(_))
        ));
    }
}
