use crate::{Attack, AttackContext, AttackError, Capabilities};
use fabflip_tensor::vecops;
use rand::rngs::StdRng;
use rand::Rng;

/// The Fang attack (Fang et al., 2020) — the TRmean/Median *directed
/// deviation* variant, the version whose source the original authors
/// released and the one the paper compares against.
///
/// Per coordinate `j`, the attacker estimates the benign update direction
/// `s_j = sign(mean_j(W_b) − w(t)_j)` and submits a value *just beyond the
/// benign extreme on the opposite side*: when the coordinate is moving up,
/// the malicious value sits below the benign minimum; when moving down,
/// above the benign maximum. Values are drawn uniformly from an interval
/// scaled by `b` (the original paper's default `b = 2`).
#[derive(Debug, Clone, Copy)]
pub struct Fang {
    b: f32,
}

impl Fang {
    /// Creates the attack with the original default scale `b = 2`.
    pub fn new() -> Fang {
        Fang { b: 2.0 }
    }

    /// Creates the attack with an explicit interval scale `b > 1`.
    ///
    /// # Panics
    ///
    /// Panics when `b <= 1`.
    pub fn with_scale(b: f32) -> Fang {
        assert!(b > 1.0, "fang scale must exceed 1");
        Fang { b }
    }
}

impl Default for Fang {
    fn default() -> Self {
        Fang::new()
    }
}

impl Attack for Fang {
    fn craft(
        &mut self,
        ctx: &AttackContext<'_>,
        rng: &mut StdRng,
    ) -> Result<Vec<f32>, AttackError> {
        let refs = crate::types::finite_benign(ctx, "Fang", 1)?;
        let mean = vecops::mean(&refs);
        let d = mean.len();
        let mut w = vec![0.0f32; d];
        for j in 0..d {
            let lo = refs.iter().map(|r| r[j]).fold(f32::INFINITY, f32::min);
            let hi = refs.iter().map(|r| r[j]).fold(f32::NEG_INFINITY, f32::max);
            let dir = mean[j] - ctx.global[j];
            // Width of the overshoot interval; use a magnitude floor so
            // near-zero coordinates still deviate.
            if dir > 0.0 {
                let width = (self.b - 1.0) * lo.abs().max(1e-3);
                w[j] = lo - width * rng.gen_range(0.0f32..=1.0);
            } else {
                let width = (self.b - 1.0) * hi.abs().max(1e-3);
                w[j] = hi + width * rng.gen_range(0.0f32..=1.0);
            }
        }
        Ok(w)
    }

    fn name(&self) -> &'static str {
        "Fang"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            needs_benign_updates: true,
            defenses_known: vec!["TRmean", "Krum", "Median"],
            works_defense_unknown: false,
            needs_raw_data: false,
            handles_heterogeneity: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TaskInfo;
    use fabflip_nn::{Dense, Sequential};
    use rand::SeedableRng;

    fn toy_task() -> TaskInfo {
        TaskInfo {
            channels: 1,
            height: 2,
            width: 2,
            num_classes: 2,
            synth_set_size: 4,
            local_lr: 0.1,
            local_batch: 2,
            local_epochs: 1,
        }
    }

    fn toy_builder(rng: &mut StdRng) -> Sequential {
        let mut m = Sequential::new();
        m.push(Dense::new(4, 2, rng));
        m
    }

    #[test]
    fn deviates_opposite_to_benign_direction() {
        let task = toy_task();
        // Coordinate 0 moves up (mean 2 > global 0): attacker goes below min.
        // Coordinate 1 moves down (mean -2 < global 0): attacker goes above max.
        let benign = vec![vec![1.0f32, -1.0], vec![3.0, -3.0]];
        let global = vec![0.0f32, 0.0];
        let ctx = AttackContext {
            global: &global,
            prev_global: None,
            benign_updates: &benign,
            n_selected: 10,
            n_malicious_selected: 2,
            task: &task,
            build_model: &toy_builder,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let w = Fang::new().craft(&ctx, &mut rng).unwrap();
        assert!(w[0] <= 1.0, "coordinate 0 should undershoot the min: {w:?}");
        assert!(w[1] >= -1.0, "coordinate 1 should overshoot the max: {w:?}");
    }

    #[test]
    fn requires_benign_oracle() {
        let task = toy_task();
        let global = vec![0.0f32; 2];
        let benign: Vec<Vec<f32>> = Vec::new();
        let ctx = AttackContext {
            global: &global,
            prev_global: None,
            benign_updates: &benign,
            n_selected: 10,
            n_malicious_selected: 2,
            task: &task,
            build_model: &toy_builder,
        };
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            Fang::new().craft(&ctx, &mut rng),
            Err(AttackError::NeedsBenignUpdates(_))
        ));
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn rejects_degenerate_scale() {
        let _ = Fang::with_scale(1.0);
    }

    #[test]
    fn capabilities_match_table1() {
        let c = Fang::new().capabilities();
        assert!(c.needs_benign_updates);
        assert!(!c.works_defense_unknown);
        assert!(c.handles_heterogeneity);
    }
}
