//! Shared adversarial-classifier training (paper Sec. IV-A step 2 and
//! Sec. IV-D).
//!
//! Given a set of (possibly synthetic) images all labelled with the random
//! class `Ỹ`, the attacker initializes a local model at the global weights
//! `w(t)` and minimizes `F(w, S) + λ·L_d`, where the distance-based
//! regularizer (Eq. 3)
//!
//! ```text
//! L_d = ‖w − w(t)‖₂ − ‖w(t) − w(t−1)‖₂
//! ```
//!
//! steers the crafted update to deviate from the global model by about as
//! much as the global model moved last round. Since the second term is
//! constant in `w`, the gradient contribution is
//! `∇L_d = (w − w(t)) / ‖w − w(t)‖₂`, applied only while the deviation
//! exceeds the previous round's global step (a hinge — pulling the update
//! *closer* than benign updates would itself look anomalous).

use crate::AttackError;
use fabflip_nn::losses::softmax_cross_entropy_hard;
use fabflip_nn::Sequential;
use fabflip_tensor::{vecops, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Configuration of the distance-based regularizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistanceReg {
    /// Regularization strength λ; `0` disables the term (the "without
    /// regularization" arm of the paper's Table V ablation).
    pub lambda: f32,
}

impl DistanceReg {
    /// The paper's default-strength regularizer.
    pub fn enabled() -> DistanceReg {
        DistanceReg { lambda: 1.0 }
    }

    /// Disabled regularizer (ablation arm).
    pub fn disabled() -> DistanceReg {
        DistanceReg { lambda: 0.0 }
    }

    /// Gradient contribution of `L_d` at flat weights `w`, or `None` when
    /// inactive (λ = 0, no previous global model, or deviation within last
    /// round's global step).
    pub fn gradient(
        &self,
        w: &[f32],
        global: &[f32],
        prev_global: Option<&[f32]>,
    ) -> Option<Vec<f32>> {
        if self.lambda == 0.0 {
            return None;
        }
        let prev = prev_global?;
        let dev = vecops::sub(w, global);
        let dev_norm = vecops::l2_norm(&dev);
        if dev_norm < 1e-12 {
            return None;
        }
        let allowance = vecops::l2_distance(global, prev);
        if dev_norm <= allowance {
            return None;
        }
        Some(vecops::scale(&dev, self.lambda / dev_norm))
    }
}

/// Trains the adversarial classifier: starts from `global`, runs `epochs`
/// passes of mini-batch SGD on `(images, labels)` with cross-entropy plus
/// the distance regularizer, and returns the resulting flat weights.
///
/// The same routine serves ZKA-R, ZKA-G (their synthetic image sets) and
/// the real-data comparator of Fig. 7.
///
/// # Errors
///
/// Returns [`AttackError`] when the weight vector does not fit the model or
/// training fails.
#[allow(clippy::too_many_arguments)]
pub fn train_adversarial_classifier(
    model: &mut Sequential,
    global: &[f32],
    prev_global: Option<&[f32]>,
    images: &Tensor,
    labels: &[usize],
    epochs: usize,
    lr: f32,
    batch: usize,
    reg: DistanceReg,
    rng: &mut StdRng,
) -> Result<Vec<f32>, AttackError> {
    model.set_flat_params(global).map_err(AttackError::Nn)?;
    let n = images.shape()[0];
    if n != labels.len() {
        return Err(AttackError::BadContext(format!(
            "{n} images vs {} labels",
            labels.len()
        )));
    }
    let batch = batch.max(1);
    let mut order: Vec<usize> = (0..n).collect();
    for _ in 0..epochs {
        order.shuffle(rng);
        for chunk in order.chunks(batch) {
            let xs: Vec<Tensor> = chunk
                .iter()
                .map(|&i| images.slice_batch(i).expect("index in range"))
                .collect();
            let x = Tensor::concat_batch(&xs).expect("consistent shapes");
            let y: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
            model.zero_grads();
            let logits = model.forward(&x)?;
            let (_, grad) = softmax_cross_entropy_hard(&logits, &y)?;
            model.backward(&grad)?;
            let w = model.flat_params();
            if let Some(g) = reg.gradient(&w, global, prev_global) {
                model.add_to_grads(&g)?;
            }
            model.sgd_step(lr);
        }
    }
    Ok(model.flat_params())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabflip_nn::{Dense, Relu};
    use rand::SeedableRng;

    fn toy_model(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Sequential::new();
        m.push(Dense::new(4, 8, &mut rng));
        m.push(Relu::new());
        m.push(Dense::new(8, 3, &mut rng));
        m
    }

    #[test]
    fn reg_gradient_is_unit_direction_when_active() {
        let reg = DistanceReg::enabled();
        let global = vec![0.0f32; 3];
        let prev = vec![0.0f32, 0.0, 0.1]; // allowance = 0.1
        let w = vec![3.0f32, 4.0, 0.0]; // deviation norm 5 > 0.1
        let g = reg.gradient(&w, &global, Some(&prev)).unwrap();
        assert!((vecops::l2_norm(&g) - 1.0).abs() < 1e-5);
        assert!((g[0] - 0.6).abs() < 1e-5 && (g[1] - 0.8).abs() < 1e-5);
    }

    #[test]
    fn reg_inactive_inside_allowance_or_without_history() {
        let reg = DistanceReg::enabled();
        let global = vec![0.0f32; 2];
        let prev = vec![10.0f32, 0.0]; // allowance = 10
        let w = vec![1.0f32, 1.0]; // deviation √2 < 10
        assert!(reg.gradient(&w, &global, Some(&prev)).is_none());
        assert!(reg.gradient(&w, &global, None).is_none());
        assert!(DistanceReg::disabled()
            .gradient(&w, &global, Some(&prev))
            .is_none());
    }

    #[test]
    fn training_moves_towards_the_flipped_label() {
        let mut model = toy_model(0);
        let global = model.flat_params();
        let mut rng = StdRng::seed_from_u64(1);
        let images = Tensor::uniform(vec![12, 4], 0.0, 1.0, &mut rng);
        let labels = vec![2usize; 12];
        let w = train_adversarial_classifier(
            &mut model,
            &global,
            None,
            &images,
            &labels,
            12,
            0.2,
            4,
            DistanceReg::disabled(),
            &mut rng,
        )
        .unwrap();
        model.set_flat_params(&w).unwrap();
        let logits = model.forward(&images).unwrap();
        let acc = fabflip_nn::losses::accuracy(&logits, &labels);
        assert!(acc > 0.9, "model did not learn the flipped label: {acc}");
    }

    #[test]
    fn regularizer_limits_deviation() {
        // Same training with and without the regularizer: the regularized
        // update must stay closer to the global model.
        let labels = vec![1usize; 16];
        let mut rng = StdRng::seed_from_u64(3);
        let images = Tensor::uniform(vec![16, 4], 0.0, 1.0, &mut rng);
        let run = |reg: DistanceReg| -> f32 {
            let mut model = toy_model(7);
            let global = model.flat_params();
            // Previous global very close to current: tiny allowance.
            let prev: Vec<f32> = global.iter().map(|v| v + 1e-4).collect();
            let mut rng = StdRng::seed_from_u64(4);
            let w = train_adversarial_classifier(
                &mut model,
                &global,
                Some(&prev),
                &images,
                &labels,
                10,
                0.3,
                4,
                reg,
                &mut rng,
            )
            .unwrap();
            vecops::l2_distance(&w, &global)
        };
        let with = run(DistanceReg { lambda: 5.0 });
        let without = run(DistanceReg::disabled());
        assert!(with < without, "reg {with} !< noreg {without}");
    }

    #[test]
    fn rejects_mismatched_labels() {
        let mut model = toy_model(0);
        let global = model.flat_params();
        let mut rng = StdRng::seed_from_u64(0);
        let images = Tensor::zeros(vec![3, 4]);
        let labels = vec![0usize; 2];
        assert!(matches!(
            train_adversarial_classifier(
                &mut model,
                &global,
                None,
                &images,
                &labels,
                1,
                0.1,
                2,
                DistanceReg::disabled(),
                &mut rng
            ),
            Err(AttackError::BadContext(_))
        ));
    }
}
