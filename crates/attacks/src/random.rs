use crate::{Attack, AttackContext, AttackError, Capabilities};
use rand::rngs::StdRng;
use rand::Rng;

/// The naive strawman of Sec. IV-A: submit freshly drawn random model
/// weights. The paper reports it bypasses mKrum in only 2.62% / 6.57% of
/// cases (Fashion-MNIST / CIFAR-10) and Bulyan in ≤ 3.27% — the motivating
/// negative result for synthesizing data instead of weights.
#[derive(Debug, Clone, Copy)]
pub struct RandomWeights {
    std: f32,
}

impl RandomWeights {
    /// Creates the attack drawing weights from `N(0, std²)`; the default
    /// `std = 0.1` is on the order of a fresh He initialization.
    pub fn new() -> RandomWeights {
        RandomWeights { std: 0.1 }
    }

    /// Creates the attack with an explicit weight scale.
    pub fn with_std(std: f32) -> RandomWeights {
        RandomWeights { std }
    }
}

impl Default for RandomWeights {
    fn default() -> Self {
        RandomWeights::new()
    }
}

impl Attack for RandomWeights {
    fn craft(
        &mut self,
        ctx: &AttackContext<'_>,
        rng: &mut StdRng,
    ) -> Result<Vec<f32>, AttackError> {
        let d = ctx.global.len();
        let mut w = Vec::with_capacity(d);
        while w.len() < d {
            // Box–Muller pair.
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let t = std::f32::consts::TAU * u2;
            w.push(self.std * r * t.cos());
            if w.len() < d {
                w.push(self.std * r * t.sin());
            }
        }
        Ok(w)
    }

    fn name(&self) -> &'static str {
        "RandomWeights"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::zero_knowledge()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TaskInfo;
    use fabflip_nn::{Dense, Sequential};
    use rand::SeedableRng;

    #[test]
    fn produces_correct_length_and_scale() {
        let task = TaskInfo {
            channels: 1,
            height: 2,
            width: 2,
            num_classes: 2,
            synth_set_size: 4,
            local_lr: 0.1,
            local_batch: 2,
            local_epochs: 1,
        };
        let builder = |rng: &mut StdRng| {
            let mut m = Sequential::new();
            m.push(Dense::new(4, 2, rng));
            m
        };
        let global = vec![0.5f32; 1000];
        let ctx = AttackContext {
            global: &global,
            prev_global: None,
            benign_updates: &[],
            n_selected: 10,
            n_malicious_selected: 2,
            task: &task,
            build_model: &builder,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let w = RandomWeights::with_std(0.1).craft(&ctx, &mut rng).unwrap();
        assert_eq!(w.len(), 1000);
        let mean: f32 = w.iter().sum::<f32>() / 1000.0;
        let var: f32 = w.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 1000.0;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.1).abs() < 0.02, "std {}", var.sqrt());
        // Unrelated to the global model (zero-knowledge, pure noise).
        let w2 = RandomWeights::with_std(0.1).craft(&ctx, &mut rng).unwrap();
        assert_ne!(w, w2);
    }
}
