use crate::{Attack, AttackContext, AttackError, Capabilities};
use fabflip_tensor::vecops;
use rand::rngs::StdRng;

/// Perturbation direction for the Min-Max attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Perturbation {
    /// `−unit(mean(W_b))` — the "inverse unit vector" of the original
    /// paper, its strongest agnostic (defense-unknown) choice.
    #[default]
    InverseUnit,
    /// `−std(W_b)` — the "inverse standard deviation" variant.
    InverseStd,
    /// `−sign(mean(W_b))` — the "inverse sign" variant.
    InverseSign,
}

/// The Min-Max attack (Shejwalkar & Houmansadr, NDSS 2021), defense-unknown
/// ("agnostic") variant — the strongest baseline in the paper's comparison.
///
/// The malicious update is `w_m = mean(W_b) + γ·∇p`, where `∇p` is a fixed
/// perturbation direction and `γ` is maximized (by bisection) subject to
/// the stealthiness constraint that `w_m`'s distance to every benign update
/// stays within the maximum benign pairwise distance:
/// `max_i ‖w_m − w_i‖ ≤ max_{i,j} ‖w_i − w_j‖`.
#[derive(Debug, Clone, Copy)]
pub struct MinMax {
    perturbation: Perturbation,
    gamma_init: f32,
    iterations: usize,
}

impl MinMax {
    /// Creates the attack with the default inverse-unit perturbation.
    pub fn new() -> MinMax {
        MinMax {
            perturbation: Perturbation::default(),
            gamma_init: 20.0,
            iterations: 30,
        }
    }

    /// Creates the attack with an explicit perturbation direction.
    pub fn with_perturbation(perturbation: Perturbation) -> MinMax {
        MinMax {
            perturbation,
            ..MinMax::new()
        }
    }

    fn direction(&self, refs: &[&[f32]]) -> Vec<f32> {
        let mean = vecops::mean(refs);
        match self.perturbation {
            Perturbation::InverseUnit => vecops::scale(&vecops::unit(&mean), -1.0),
            Perturbation::InverseStd => vecops::scale(&vecops::std_dev(refs), -1.0),
            Perturbation::InverseSign => vecops::scale(&vecops::sign(&mean), -1.0),
        }
    }
}

impl Default for MinMax {
    fn default() -> Self {
        MinMax::new()
    }
}

impl Attack for MinMax {
    fn craft(
        &mut self,
        ctx: &AttackContext<'_>,
        _rng: &mut StdRng,
    ) -> Result<Vec<f32>, AttackError> {
        let refs = crate::types::finite_benign(ctx, "Min-Max", 2)?;
        let mean = vecops::mean(&refs);
        let dp = self.direction(&refs);
        if vecops::l2_norm(&dp) == 0.0 {
            // Degenerate geometry (all-zero mean/std): nothing to scale.
            return Ok(mean);
        }
        // Stealthiness budget: the maximum benign pairwise distance.
        let dists = vecops::pairwise_sq_distances(&refs);
        // fabcheck::allow(unordered_float_reduction): running max, serial left-to-right over the distance matrix
        let budget = dists.iter().flatten().fold(0.0f32, |a, &b| a.max(b)).sqrt();
        let fits = |gamma: f32| -> bool {
            let mut w = mean.clone();
            vecops::axpy_in_place(&mut w, gamma, &dp);
            refs.iter().all(|r| vecops::l2_distance(&w, r) <= budget)
        };
        // Bisection for the largest feasible γ.
        let (mut lo, mut hi) = (0.0f32, self.gamma_init);
        // Grow hi if it is still feasible.
        let mut grow = 0;
        while fits(hi) && grow < 10 {
            lo = hi;
            hi *= 2.0;
            grow += 1;
        }
        for _ in 0..self.iterations {
            let mid = 0.5 * (lo + hi);
            if fits(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let mut w = mean;
        vecops::axpy_in_place(&mut w, lo, &dp);
        Ok(w)
    }

    fn name(&self) -> &'static str {
        "Min-Max"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            needs_benign_updates: true,
            defenses_known: vec!["Krum", "Bulyan", "TRmean", "Median", "AFA"],
            works_defense_unknown: true,
            needs_raw_data: false,
            handles_heterogeneity: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TaskInfo;
    use fabflip_nn::{Dense, Sequential};
    use rand::SeedableRng;

    fn toy_task() -> TaskInfo {
        TaskInfo {
            channels: 1,
            height: 2,
            width: 2,
            num_classes: 2,
            synth_set_size: 4,
            local_lr: 0.1,
            local_batch: 2,
            local_epochs: 1,
        }
    }

    fn toy_builder(rng: &mut StdRng) -> Sequential {
        let mut m = Sequential::new();
        m.push(Dense::new(4, 2, rng));
        m
    }

    fn craft_with(benign: &[Vec<f32>], pert: Perturbation) -> Vec<f32> {
        let task = toy_task();
        let global = vec![0.0f32; benign[0].len()];
        let ctx = AttackContext {
            global: &global,
            prev_global: None,
            benign_updates: benign,
            n_selected: 10,
            n_malicious_selected: 2,
            task: &task,
            build_model: &toy_builder,
        };
        let mut rng = StdRng::seed_from_u64(0);
        MinMax::with_perturbation(pert)
            .craft(&ctx, &mut rng)
            .unwrap()
    }

    #[test]
    fn satisfies_stealth_constraint() {
        let benign = vec![
            vec![1.0f32, 0.0, 2.0],
            vec![1.2, 0.1, 1.8],
            vec![0.8, -0.1, 2.2],
            vec![1.1, 0.0, 2.1],
        ];
        let w = craft_with(&benign, Perturbation::InverseUnit);
        let refs: Vec<&[f32]> = benign.iter().map(|u| u.as_slice()).collect();
        let budget = vecops::pairwise_sq_distances(&refs)
            .iter()
            .flatten()
            .fold(0.0f32, |a, &b| a.max(b))
            .sqrt();
        for r in &refs {
            assert!(
                vecops::l2_distance(&w, r) <= budget * 1.01,
                "constraint violated"
            );
        }
        // And it actually moved away from the mean.
        let mean = vecops::mean(&refs);
        assert!(vecops::l2_distance(&w, &mean) > 1e-3);
    }

    #[test]
    fn opposes_the_mean_direction() {
        let benign = vec![vec![2.0f32, 2.0], vec![2.2, 1.8], vec![1.8, 2.2]];
        let w = craft_with(&benign, Perturbation::InverseUnit);
        let refs: Vec<&[f32]> = benign.iter().map(|u| u.as_slice()).collect();
        let mean = vecops::mean(&refs);
        // The perturbation points against the mean: dot(w − mean, mean) < 0.
        let delta = vecops::sub(&w, &mean);
        assert!(vecops::dot(&delta, &mean) < 0.0);
    }

    #[test]
    fn all_perturbations_produce_finite_updates() {
        let benign = vec![vec![1.0f32, -1.0], vec![1.5, -0.5], vec![0.5, -1.5]];
        for pert in [
            Perturbation::InverseUnit,
            Perturbation::InverseStd,
            Perturbation::InverseSign,
        ] {
            let w = craft_with(&benign, pert);
            assert!(w.iter().all(|v| v.is_finite()), "{pert:?}");
        }
    }

    #[test]
    fn needs_at_least_two_benign_updates() {
        let task = toy_task();
        let global = vec![0.0f32; 2];
        let benign = vec![vec![1.0f32, 1.0]];
        let ctx = AttackContext {
            global: &global,
            prev_global: None,
            benign_updates: &benign,
            n_selected: 10,
            n_malicious_selected: 2,
            task: &task,
            build_model: &toy_builder,
        };
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            MinMax::new().craft(&ctx, &mut rng),
            Err(AttackError::NeedsBenignUpdates(_))
        ));
    }

    #[test]
    fn identical_benign_updates_degenerate_gracefully() {
        // Zero pairwise budget → γ = 0 → w = mean.
        let benign = vec![vec![1.0f32, 2.0], vec![1.0, 2.0], vec![1.0, 2.0]];
        let w = craft_with(&benign, Perturbation::InverseUnit);
        assert!((w[0] - 1.0).abs() < 1e-4 && (w[1] - 2.0).abs() < 1e-4);
    }
}
