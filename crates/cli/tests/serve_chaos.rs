//! The tentpole acceptance test (ISSUE: criterion c): run the real
//! `fabflip-cli serve` binary, drive it through the chaos proxy, `kill
//! -9` it mid-round while clients keep submitting, restart it on the
//! same port, and require the final global model — and the full
//! per-round transcript in the checkpoint — to be bitwise identical to
//! the uninterrupted batch simulation, at server thread counts 1, 2
//! and 7.

use fabflip_cli::{parse, Command};
use fabflip_fl::{checkpoint, simulate, FlConfig};
use fabflip_serve::chaos::{ChaosProfile, ChaosProxy};
use fabflip_serve::loadgen::{run_load, LoadGenOptions};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command as Proc, Stdio};
use std::time::{Duration, Instant};

/// The deployment, expressed as CLI flags: the test's in-process fleet
/// and the subprocess server both parse it, so they cannot drift apart.
const FLAGS: &str = "--task fashion --attack lie --defense mkrum --rounds 3 --seed 21 \
                     --n-clients 12 --clients-per-round 6 --train-size 240 --test-size 80 \
                     --synth-set 6";

fn argv(s: &str) -> Vec<String> {
    s.split_whitespace().map(String::from).collect()
}

fn deployment_cfg() -> FlConfig {
    match parse(&argv(&format!("load-gen --addr 127.0.0.1:1 {FLAGS}"))) {
        Ok(Command::LoadGen(l)) => l.config,
        other => panic!("flag parse: {other:?}"),
    }
}

/// Unique scratch directory (pid + counter; no wall clock).
fn test_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static N: AtomicUsize = AtomicUsize::new(0);
    let d = std::env::temp_dir().join(format!(
        "fabflip-killtest-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&d).expect("test dir");
    d
}

fn launch_server(dir: &Path, bind: &str, port_file: &Path, threads: usize) -> Child {
    Proc::new(env!("CARGO_BIN_EXE_fabflip-cli"))
        .arg("serve")
        .args(["--ckpt-dir", &dir.display().to_string()])
        .args(["--bind", bind])
        .args(["--port-file", &port_file.display().to_string()])
        .args([
            "--workers",
            "2",
            "--queue-cap",
            "8",
            "--deadline-ms",
            "60000",
        ])
        .args(FLAGS.split_whitespace())
        .env("FABFLIP_THREADS", threads.to_string())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("launch fabflip-cli serve")
}

fn wait_for_port(port_file: &Path) -> SocketAddr {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(s) = std::fs::read_to_string(port_file) {
            if let Ok(addr) = s.trim().parse() {
                return addr;
            }
        }
        assert!(
            Instant::now() < deadline,
            "server never wrote {port_file:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn kill_minus_nine_mid_round_resumes_bitwise_at_every_thread_count() {
    let cfg = deployment_cfg();
    let batch = simulate(&cfg).expect("batch reference");
    let batch_bits: Vec<u32> = batch.final_model.iter().map(|w| w.to_bits()).collect();

    for threads in [1usize, 2, 7] {
        let dir = test_dir(&format!("t{threads}"));
        let port_file = dir.join("port");

        let mut child = launch_server(&dir, "127.0.0.1:0", &port_file, threads);
        let addr = wait_for_port(&port_file);
        let mut proxy =
            ChaosProxy::spawn(addr, ChaosProfile::light(40 + threads as u64)).expect("proxy");

        let lg_cfg = cfg.clone();
        let proxy_addr = proxy.addr();
        let loadgen = std::thread::spawn(move || {
            let mut opts = LoadGenOptions::new(lg_cfg, proxy_addr);
            opts.io_timeout = Duration::from_secs(1);
            run_load(&opts)
        });

        // Wait for durable progress — ideally a mid-round in-flight log,
        // at minimum a closed round — then SIGKILL the server under
        // continued client load.
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            if let Some(c) = checkpoint::load(&dir, &cfg) {
                if !c.inflight.is_empty() || c.next_round >= 1 {
                    break;
                }
            }
            assert!(Instant::now() < deadline, "no durable progress before kill");
            std::thread::sleep(Duration::from_millis(1));
        }
        child.kill().expect("kill -9");
        child.wait().expect("reap");

        // Restart pinned to the port the clients already know. The serve
        // binary retries the bind through any lingering-socket window.
        let mut child2 = launch_server(&dir, &addr.to_string(), &port_file, threads);

        let report = loadgen
            .join()
            .expect("loadgen thread")
            .expect("loadgen survived the kill");
        assert_eq!(
            report.final_global_bits, batch_bits,
            "threads={threads}: final model diverged after kill -9 + restart"
        );

        let ckpt = checkpoint::load(&dir, &cfg).expect("final checkpoint");
        assert_eq!(
            ckpt.rounds, batch.rounds,
            "threads={threads}: per-round transcript diverged"
        );
        assert_eq!(ckpt.global_bits, batch_bits);
        assert_eq!(ckpt.next_round, cfg.rounds);

        child2.kill().expect("stop restarted server");
        child2.wait().expect("reap restarted server");
        proxy.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
