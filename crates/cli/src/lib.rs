//! # fabflip-cli
//!
//! Command-line front end for the `fabflip` testbed. Subcommands:
//!
//! * `list` — the available attacks (with their Table I assumption
//!   profiles) and defenses,
//! * `run` — one federated-learning simulation with live per-round
//!   progress, e.g.
//!
//! ```sh
//! fabflip-cli run --task fashion --attack zka-g --defense mkrum --rounds 20
//! fabflip-cli run --task cifar --attack min-max --defense bulyan --beta 0.1
//! fabflip-cli run --task fashion --attack zka-r --defense foolsgold --sybil-noise 0.02
//! ```
//!
//! The argument parser is hand-rolled (no CLI dependency) and exposed here
//! for testing.

use fabflip::ZkaConfig;
use fabflip_agg::DefenseKind;
use fabflip_fl::{AttackSpec, CheckpointSpec, FaultPlan, FlConfig, StragglerPolicy, TaskKind};
use std::net::SocketAddr;

/// A parsed `run` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    /// The full simulation config.
    pub config: FlConfig,
    /// Emit one line per round while running.
    pub live: bool,
    /// Emit the summary as JSON instead of text.
    pub json: bool,
    /// Crash-safe checkpointing (`--checkpoint-dir`), if requested.
    pub checkpoint: Option<CheckpointSpec>,
}

/// A parsed `serve` invocation (the crash-tolerant TCP aggregation
/// server, DESIGN.md §4g).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// The deployment config; must match the load generator's.
    pub config: FlConfig,
    /// Listen address (`:0` picks an ephemeral port).
    pub bind: SocketAddr,
    /// Checkpoint + write-ahead-log directory (required: the server's
    /// whole point is durability).
    pub ckpt_dir: String,
    /// Connection-handler threads (`0` = one per core).
    pub workers: usize,
    /// Bound on the submission queue before `BUSY` backpressure.
    pub queue_cap: usize,
    /// Per-round deadline in milliseconds.
    pub deadline_ms: u64,
    /// When set, the bound address is written there (atomically) once
    /// listening — how scripts find an ephemeral port.
    pub port_file: Option<String>,
}

/// A parsed `load-gen` invocation (drives a deployment's client side
/// against a running server).
#[derive(Debug, Clone, PartialEq)]
pub struct LoadGenArgs {
    /// The deployment config; must match the server's.
    pub config: FlConfig,
    /// Server (or chaos proxy) address.
    pub addr: SocketAddr,
    /// Concurrent submission connections.
    pub senders: usize,
    /// Skip every Nth staged submission (deadline-degradation drills).
    pub omit_every: usize,
    /// Send SHUTDOWN to the server once all rounds are done.
    pub shutdown: bool,
    /// Emit the report as JSON instead of text.
    pub json: bool,
}

/// Top-level parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `list`
    List,
    /// `run …` (boxed: the config dwarfs the other variants).
    Run(Box<RunArgs>),
    /// `serve …`
    Serve(Box<ServeArgs>),
    /// `load-gen …`
    LoadGen(Box<LoadGenArgs>),
    /// `help` or `--help`
    Help,
}

/// Parse error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Parses an attack name (the labels used across the repo and the paper).
///
/// # Errors
///
/// Returns a message listing the valid names.
pub fn parse_attack(name: &str) -> Result<AttackSpec, ParseError> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "none" => AttackSpec::None,
        "lie" => AttackSpec::Lie,
        "fang" => AttackSpec::Fang,
        "min-max" | "minmax" => AttackSpec::MinMax,
        "min-sum" | "minsum" => AttackSpec::MinSum,
        "random" | "random-weights" => AttackSpec::RandomWeights,
        "real-data" | "realdata" => AttackSpec::RealData { lambda: 1.0 },
        "zka-r" | "zkar" => AttackSpec::ZkaR {
            cfg: ZkaConfig::paper(),
        },
        "zka-g" | "zkag" => AttackSpec::ZkaG {
            cfg: ZkaConfig::paper(),
        },
        "zka-r-static" => AttackSpec::ZkaR {
            cfg: ZkaConfig::static_variant(),
        },
        "zka-g-static" => AttackSpec::ZkaG {
            cfg: ZkaConfig::static_variant(),
        },
        other => {
            return Err(ParseError(format!(
                "unknown attack `{other}`; one of: none, lie, fang, min-max, min-sum, random, \
                 real-data, zka-r, zka-g, zka-r-static, zka-g-static"
            )))
        }
    })
}

/// Parses a defense name.
///
/// # Errors
///
/// Returns a message listing the valid names.
pub fn parse_defense(name: &str) -> Result<DefenseKind, ParseError> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "fedavg" | "none" => DefenseKind::FedAvg,
        "krum" => DefenseKind::Krum { f: 2 },
        "mkrum" | "multi-krum" => DefenseKind::MKrum { f: 2 },
        "trmean" | "trimmed-mean" => DefenseKind::TrMean { trim: 2 },
        "median" => DefenseKind::Median,
        "bulyan" => DefenseKind::Bulyan { f: 2 },
        "foolsgold" => DefenseKind::FoolsGold,
        "normbound" | "norm-bound" => DefenseKind::NormBound {
            max_norm_milli: 500,
        },
        other => {
            return Err(ParseError(format!(
                "unknown defense `{other}`; one of: fedavg, krum, mkrum, trmean, median, bulyan, \
                 foolsgold, normbound"
            )))
        }
    })
}

/// Parses a task name.
///
/// # Errors
///
/// Returns a message listing the valid names.
pub fn parse_task(name: &str) -> Result<TaskKind, ParseError> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "fashion" | "fashion-mnist" => TaskKind::Fashion,
        "cifar" | "cifar-10" | "cifar10" => TaskKind::Cifar,
        other => {
            return Err(ParseError(format!(
                "unknown task `{other}`; fashion or cifar"
            )))
        }
    })
}

fn take_value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> Result<&'a str, ParseError> {
    *i += 1;
    args.get(*i)
        .map(String::as_str)
        .ok_or_else(|| ParseError(format!("{flag} needs a value")))
}

fn take_parsed<T: std::str::FromStr>(
    args: &[String],
    i: &mut usize,
    flag: &str,
    what: &str,
) -> Result<T, ParseError> {
    take_value(args, i, flag)?
        .parse()
        .map_err(|_| ParseError(format!("{flag} needs {what}")))
}

/// The experiment-shaping flags shared by `run`, `serve` and `load-gen` —
/// one parser so a server and its load generator cannot drift apart.
struct ConfigFlags {
    task: TaskKind,
    attack: AttackSpec,
    defense: DefenseKind,
    rounds: Option<usize>,
    beta: Option<f64>,
    seed: u64,
    sybil_noise: f32,
    n_clients: Option<usize>,
    clients_per_round: Option<usize>,
    train_size: Option<usize>,
    test_size: Option<usize>,
    synth_set: Option<usize>,
}

impl ConfigFlags {
    fn new() -> ConfigFlags {
        ConfigFlags {
            task: TaskKind::Fashion,
            attack: AttackSpec::None,
            defense: DefenseKind::FedAvg,
            rounds: None,
            beta: None,
            seed: 1,
            sybil_noise: 0.0,
            n_clients: None,
            clients_per_round: None,
            train_size: None,
            test_size: None,
            synth_set: None,
        }
    }

    /// Consumes `args[*i]` if it is a shared config flag; returns whether
    /// it did.
    fn accept(&mut self, args: &[String], i: &mut usize) -> Result<bool, ParseError> {
        match args[*i].as_str() {
            "--task" => self.task = parse_task(take_value(args, i, "--task")?)?,
            "--attack" => self.attack = parse_attack(take_value(args, i, "--attack")?)?,
            "--defense" => self.defense = parse_defense(take_value(args, i, "--defense")?)?,
            "--rounds" => self.rounds = Some(take_parsed(args, i, "--rounds", "an integer")?),
            "--beta" => self.beta = Some(take_parsed(args, i, "--beta", "a number")?),
            "--seed" => self.seed = take_parsed(args, i, "--seed", "an integer")?,
            "--sybil-noise" => {
                self.sybil_noise = take_parsed(args, i, "--sybil-noise", "a number")?
            }
            "--n-clients" => {
                self.n_clients = Some(take_parsed(args, i, "--n-clients", "an integer")?)
            }
            "--clients-per-round" => {
                self.clients_per_round =
                    Some(take_parsed(args, i, "--clients-per-round", "an integer")?)
            }
            "--train-size" => {
                self.train_size = Some(take_parsed(args, i, "--train-size", "an integer")?)
            }
            "--test-size" => {
                self.test_size = Some(take_parsed(args, i, "--test-size", "an integer")?)
            }
            "--synth-set" => {
                self.synth_set = Some(take_parsed(args, i, "--synth-set", "an integer")?)
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    fn build(self, faults: FaultPlan) -> FlConfig {
        let mut builder = FlConfig::builder(self.task)
            .attack(self.attack)
            .defense(self.defense)
            .seed(self.seed)
            .sybil_noise(self.sybil_noise)
            .faults(faults);
        if let Some(r) = self.rounds {
            builder = builder.rounds(r);
        }
        if let Some(b) = self.beta {
            builder = builder.beta(b);
        }
        if let Some(n) = self.n_clients {
            builder = builder.n_clients(n);
        }
        if let Some(k) = self.clients_per_round {
            builder = builder.clients_per_round(k);
        }
        if let Some(n) = self.train_size {
            builder = builder.train_size(n);
        }
        if let Some(n) = self.test_size {
            builder = builder.test_size(n);
        }
        if let Some(s) = self.synth_set {
            builder = builder.synth_set_size(s);
        }
        builder.build()
    }
}

/// Parses a full command line (without the program name).
///
/// # Errors
///
/// Returns a user-facing message for unknown subcommands, flags or values.
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    match args.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => Ok(Command::Help),
        Some("list") => Ok(Command::List),
        Some("run") => {
            let mut cf = ConfigFlags::new();
            let mut live = true;
            let mut json = false;
            let mut faults = FaultPlan::default();
            let mut stale_policy = false;
            let mut stale_discount: f32 = 1.0;
            let mut checkpoint_dir: Option<String> = None;
            let mut checkpoint_every: usize = 5;
            let mut i = 1usize;
            while i < args.len() {
                if cf.accept(args, &mut i)? {
                    i += 1;
                    continue;
                }
                match args[i].as_str() {
                    "--dropout" => {
                        faults.dropout = take_value(args, &mut i, "--dropout")?
                            .parse()
                            .map_err(|_| ParseError("--dropout needs a rate in [0,1]".into()))?
                    }
                    "--stragglers" => {
                        faults.straggler = take_value(args, &mut i, "--stragglers")?
                            .parse()
                            .map_err(|_| ParseError("--stragglers needs a rate in [0,1]".into()))?
                    }
                    "--malformed" => {
                        faults.malformed = take_value(args, &mut i, "--malformed")?
                            .parse()
                            .map_err(|_| ParseError("--malformed needs a rate in [0,1]".into()))?
                    }
                    "--straggler-policy" => match take_value(args, &mut i, "--straggler-policy")? {
                        "drop" => stale_policy = false,
                        "stale" => stale_policy = true,
                        other => {
                            return Err(ParseError(format!(
                                "unknown straggler policy `{other}`; drop or stale"
                            )))
                        }
                    },
                    "--stale-discount" => {
                        stale_discount = take_value(args, &mut i, "--stale-discount")?
                            .parse()
                            .map_err(|_| {
                                ParseError("--stale-discount needs a factor in [0,1]".into())
                            })?
                    }
                    "--checkpoint-dir" => {
                        checkpoint_dir =
                            Some(take_value(args, &mut i, "--checkpoint-dir")?.to_string())
                    }
                    "--checkpoint-every" => {
                        checkpoint_every = take_value(args, &mut i, "--checkpoint-every")?
                            .parse()
                            .map_err(|_| {
                            ParseError("--checkpoint-every needs an integer".into())
                        })?
                    }
                    "--quiet" => live = false,
                    "--json" => json = true,
                    other => return Err(ParseError(format!("unknown flag `{other}`"))),
                }
                i += 1;
            }
            if !(0.0..=1.0).contains(&stale_discount) {
                return Err(ParseError(
                    "--stale-discount needs a factor in [0,1]".into(),
                ));
            }
            if stale_policy {
                faults.straggler_policy = StragglerPolicy::Stale {
                    discount_milli: (stale_discount * 1000.0).round() as u32,
                };
            }
            Ok(Command::Run(Box::new(RunArgs {
                config: cf.build(faults),
                live,
                json,
                checkpoint: checkpoint_dir.map(|d| CheckpointSpec::new(d, checkpoint_every)),
            })))
        }
        Some("serve") => {
            let mut cf = ConfigFlags::new();
            let mut bind: SocketAddr = "127.0.0.1:7117"
                .parse()
                .map_err(|_| ParseError("internal: default bind address is invalid".into()))?;
            let mut ckpt_dir: Option<String> = None;
            let mut workers = 0usize;
            let mut queue_cap = 16usize;
            let mut deadline_ms = 30_000u64;
            let mut port_file: Option<String> = None;
            let mut i = 1usize;
            while i < args.len() {
                if cf.accept(args, &mut i)? {
                    i += 1;
                    continue;
                }
                match args[i].as_str() {
                    "--bind" => {
                        bind =
                            take_parsed(args, &mut i, "--bind", "an address like 127.0.0.1:7117")?
                    }
                    "--ckpt-dir" => {
                        ckpt_dir = Some(take_value(args, &mut i, "--ckpt-dir")?.to_string())
                    }
                    "--workers" => workers = take_parsed(args, &mut i, "--workers", "an integer")?,
                    "--queue-cap" => {
                        queue_cap = take_parsed(args, &mut i, "--queue-cap", "an integer")?
                    }
                    "--deadline-ms" => {
                        deadline_ms = take_parsed(args, &mut i, "--deadline-ms", "milliseconds")?
                    }
                    "--port-file" => {
                        port_file = Some(take_value(args, &mut i, "--port-file")?.to_string())
                    }
                    other => return Err(ParseError(format!("unknown flag `{other}`"))),
                }
                i += 1;
            }
            let Some(ckpt_dir) = ckpt_dir else {
                return Err(ParseError(
                    "serve needs --ckpt-dir (crash tolerance is the point)".into(),
                ));
            };
            Ok(Command::Serve(Box::new(ServeArgs {
                config: cf.build(FaultPlan::default()),
                bind,
                ckpt_dir,
                workers,
                queue_cap,
                deadline_ms,
                port_file,
            })))
        }
        Some("load-gen") => {
            let mut cf = ConfigFlags::new();
            let mut addr: Option<SocketAddr> = None;
            let mut senders = 4usize;
            let mut omit_every = 0usize;
            let mut shutdown = false;
            let mut json = false;
            let mut i = 1usize;
            while i < args.len() {
                if cf.accept(args, &mut i)? {
                    i += 1;
                    continue;
                }
                match args[i].as_str() {
                    "--addr" => {
                        addr = Some(take_parsed(
                            args,
                            &mut i,
                            "--addr",
                            "an address like 127.0.0.1:7117",
                        )?)
                    }
                    "--senders" => senders = take_parsed(args, &mut i, "--senders", "an integer")?,
                    "--omit-every" => {
                        omit_every = take_parsed(args, &mut i, "--omit-every", "an integer")?
                    }
                    "--shutdown" => shutdown = true,
                    "--json" => json = true,
                    other => return Err(ParseError(format!("unknown flag `{other}`"))),
                }
                i += 1;
            }
            let Some(addr) = addr else {
                return Err(ParseError("load-gen needs --addr".into()));
            };
            Ok(Command::LoadGen(Box::new(LoadGenArgs {
                config: cf.build(FaultPlan::default()),
                addr,
                senders,
                omit_every,
                shutdown,
                json,
            })))
        }
        Some(other) => Err(ParseError(format!(
            "unknown subcommand `{other}`; try `list`, `run`, `serve`, `load-gen` or `help`"
        ))),
    }
}

/// The `help` text.
pub fn help_text() -> &'static str {
    "fabflip-cli — zero-knowledge FL poisoning testbed

USAGE:
    fabflip-cli list
    fabflip-cli run [--task fashion|cifar] [--attack NAME] [--defense NAME]
                    [--rounds N] [--beta B] [--seed S] [--sybil-noise X]
                    [--dropout R] [--stragglers R] [--straggler-policy drop|stale]
                    [--stale-discount F] [--malformed R]
                    [--checkpoint-dir PATH] [--checkpoint-every N]
                    [--quiet] [--json]
    fabflip-cli serve --ckpt-dir PATH [--bind ADDR] [--workers N]
                    [--queue-cap N] [--deadline-ms MS] [--port-file PATH]
                    [config flags as for run]
    fabflip-cli load-gen --addr ADDR [--senders N] [--omit-every N]
                    [--shutdown] [--json] [config flags as for run]

SCALE (shared by run/serve/load-gen; defaults are the paper's 100/10):
    --n-clients N --clients-per-round K --train-size N --test-size N
    --synth-set S          shrink a deployment for smoke tests and CI

FAULTS (deterministic per seed/round/client; rates in [0,1], sum ≤ 1):
    --dropout R            clients unreachable before local compute
    --stragglers R         submissions late; `drop` loses them, `stale`
                           delivers next round weighted by --stale-discount
    --malformed R          submissions corrupted in transit (NaN/truncated/
                           overlong/zeroed) and quarantined by the server

CHECKPOINTING:
    --checkpoint-dir PATH  save crash-safe state there; an interrupted run
                           with the same config resumes automatically
    --checkpoint-every N   rounds between saves (default 5)

SERVING (DESIGN.md §4g — live TCP aggregation instead of batch sim):
    serve                  crash-tolerant aggregation server; checkpoints
                           every accepted submission, so `kill -9` +
                           restart resumes bitwise-identically. --bind :0
                           plus --port-file is how scripts get the port.
    load-gen               drives the whole client fleet (including the
                           attack) against a server; --shutdown stops the
                           server when the run completes.

EXAMPLES:
    fabflip-cli run --task fashion --attack zka-g --defense mkrum --rounds 20
    fabflip-cli run --task cifar --attack min-max --defense bulyan --beta 0.1
    fabflip-cli run --attack random --defense krum --dropout 0.2 --malformed 0.05
    fabflip-cli run --rounds 50 --checkpoint-dir ckpts --checkpoint-every 10
    fabflip-cli serve --ckpt-dir ckpts --attack lie --defense mkrum --rounds 20
    fabflip-cli load-gen --addr 127.0.0.1:7117 --attack lie --defense mkrum --rounds 20 --shutdown
    fabflip-cli list
"
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_names_case_insensitively() {
        assert_eq!(parse_attack("ZKA-G").unwrap().label(), "ZKA-G");
        assert_eq!(parse_attack("minmax").unwrap(), AttackSpec::MinMax);
        assert_eq!(parse_defense("MKRUM").unwrap().label(), "mKrum");
        assert_eq!(parse_task("CIFAR10").unwrap(), TaskKind::Cifar);
        assert!(parse_attack("bogus").is_err());
        assert!(parse_defense("bogus").is_err());
        assert!(parse_task("bogus").is_err());
    }

    #[test]
    fn parses_a_full_run_command() {
        let cmd = parse(&argv(
            "run --task cifar --attack zka-r --defense bulyan --rounds 7 --beta 0.1 --seed 9 --json",
        ))
        .unwrap();
        match cmd {
            Command::Run(r) => {
                assert_eq!(r.config.task, TaskKind::Cifar);
                assert_eq!(r.config.attack.label(), "ZKA-R");
                assert_eq!(r.config.defense.label(), "Bulyan");
                assert_eq!(r.config.rounds, 7);
                assert_eq!(r.config.beta, 0.1);
                assert_eq!(r.config.seed, 9);
                assert!(r.json);
                assert!(r.live);
            }
            other => panic!("expected run, got {other:?}"),
        }
    }

    #[test]
    fn defaults_are_sensible() {
        let cmd = parse(&argv("run")).unwrap();
        match cmd {
            Command::Run(r) => {
                assert_eq!(r.config.task, TaskKind::Fashion);
                assert_eq!(r.config.attack, AttackSpec::None);
                assert!(!r.json);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn help_and_list_and_errors() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("list")).unwrap(), Command::List);
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("run --rounds")).is_err());
        assert!(parse(&argv("run --rounds x")).is_err());
        assert!(parse(&argv("run --whatever")).is_err());
        assert!(!help_text().is_empty());
    }

    #[test]
    fn fault_flags_reach_the_config() {
        let cmd = parse(&argv(
            "run --dropout 0.2 --stragglers 0.1 --straggler-policy stale --stale-discount 0.5 \
             --malformed 0.05",
        ))
        .unwrap();
        match cmd {
            Command::Run(r) => {
                let f = &r.config.faults;
                assert!((f.dropout - 0.2).abs() < 1e-6);
                assert!((f.straggler - 0.1).abs() < 1e-6);
                assert!((f.malformed - 0.05).abs() < 1e-6);
                assert_eq!(
                    f.straggler_policy,
                    StragglerPolicy::Stale {
                        discount_milli: 500
                    }
                );
                assert!(r.checkpoint.is_none());
            }
            _ => panic!(),
        }
        // Default policy stays Drop; the discount flag alone changes nothing.
        match parse(&argv("run --stragglers 0.1 --stale-discount 0.3")).unwrap() {
            Command::Run(r) => {
                assert_eq!(r.config.faults.straggler_policy, StragglerPolicy::Drop)
            }
            _ => panic!(),
        }
        assert!(parse(&argv("run --dropout x")).is_err());
        assert!(parse(&argv("run --straggler-policy eventually")).is_err());
        assert!(parse(&argv("run --stale-discount 1.5")).is_err());
    }

    #[test]
    fn checkpoint_flags_build_a_spec() {
        match parse(&argv("run --checkpoint-dir ckpts --checkpoint-every 10")).unwrap() {
            Command::Run(r) => {
                assert_eq!(r.checkpoint, Some(CheckpointSpec::new("ckpts", 10)));
            }
            _ => panic!(),
        }
        // --checkpoint-every defaults to 5 and is inert without a dir.
        match parse(&argv("run --checkpoint-dir out")).unwrap() {
            Command::Run(r) => assert_eq!(r.checkpoint, Some(CheckpointSpec::new("out", 5))),
            _ => panic!(),
        }
        match parse(&argv("run --checkpoint-every 3")).unwrap() {
            Command::Run(r) => assert!(r.checkpoint.is_none()),
            _ => panic!(),
        }
        assert!(parse(&argv("run --checkpoint-every x")).is_err());
    }

    #[test]
    fn parses_a_serve_command() {
        let cmd = parse(&argv(
            "serve --ckpt-dir /tmp/ck --bind 127.0.0.1:0 --workers 3 --queue-cap 8 \
             --deadline-ms 1500 --port-file /tmp/port --attack lie --defense mkrum \
             --rounds 5 --seed 21",
        ))
        .unwrap();
        match cmd {
            Command::Serve(s) => {
                assert_eq!(s.ckpt_dir, "/tmp/ck");
                assert_eq!(s.bind, "127.0.0.1:0".parse::<SocketAddr>().unwrap());
                assert_eq!(s.workers, 3);
                assert_eq!(s.queue_cap, 8);
                assert_eq!(s.deadline_ms, 1500);
                assert_eq!(s.port_file.as_deref(), Some("/tmp/port"));
                assert_eq!(s.config.attack, AttackSpec::Lie);
                assert_eq!(s.config.rounds, 5);
                assert_eq!(s.config.seed, 21);
            }
            other => panic!("expected serve, got {other:?}"),
        }
        // Defaults: fixed loopback bind, durable dir still required.
        match parse(&argv("serve --ckpt-dir ck")).unwrap() {
            Command::Serve(s) => {
                assert_eq!(s.bind, "127.0.0.1:7117".parse::<SocketAddr>().unwrap());
                assert_eq!(s.workers, 0);
                assert_eq!(s.queue_cap, 16);
                assert_eq!(s.deadline_ms, 30_000);
                assert!(s.port_file.is_none());
            }
            _ => panic!(),
        }
        assert!(parse(&argv("serve")).is_err(), "--ckpt-dir is required");
        assert!(parse(&argv("serve --ckpt-dir ck --bind nonsense")).is_err());
        assert!(parse(&argv("serve --ckpt-dir ck --frobnicate")).is_err());
    }

    #[test]
    fn parses_a_load_gen_command() {
        let cmd = parse(&argv(
            "load-gen --addr 127.0.0.1:9000 --senders 2 --omit-every 3 --shutdown --json \
             --attack lie --defense mkrum --rounds 5 --seed 21",
        ))
        .unwrap();
        match cmd {
            Command::LoadGen(l) => {
                assert_eq!(l.addr, "127.0.0.1:9000".parse::<SocketAddr>().unwrap());
                assert_eq!(l.senders, 2);
                assert_eq!(l.omit_every, 3);
                assert!(l.shutdown);
                assert!(l.json);
                assert_eq!(l.config.attack, AttackSpec::Lie);
                assert_eq!(l.config.seed, 21);
            }
            other => panic!("expected load-gen, got {other:?}"),
        }
        assert!(parse(&argv("load-gen")).is_err(), "--addr is required");
        assert!(parse(&argv("load-gen --addr nonsense")).is_err());
    }

    #[test]
    fn serve_and_load_gen_share_the_run_config_surface() {
        // The same config flags must produce the same FlConfig through
        // every subcommand — a server and its load generator parse their
        // (identical) command lines independently.
        let flags = "--task fashion --attack lie --defense mkrum --rounds 4 --beta 0.3 --seed 77 \
                     --n-clients 12 --clients-per-round 6 --train-size 240 --test-size 80 \
                     --synth-set 6";
        let run = match parse(&argv(&format!("run {flags}"))).unwrap() {
            Command::Run(r) => r.config,
            _ => panic!(),
        };
        let serve = match parse(&argv(&format!("serve --ckpt-dir ck {flags}"))).unwrap() {
            Command::Serve(s) => s.config,
            _ => panic!(),
        };
        let lg = match parse(&argv(&format!("load-gen --addr 127.0.0.1:1 {flags}"))).unwrap() {
            Command::LoadGen(l) => l.config,
            _ => panic!(),
        };
        assert_eq!(run, serve);
        assert_eq!(run, lg);
        assert_eq!(run.n_clients, 12);
        assert_eq!(run.clients_per_round, 6);
        assert_eq!(run.train_size, 240);
        assert_eq!(run.test_size, 80);
        assert_eq!(run.synth_set_size, 6);
    }

    #[test]
    fn sybil_noise_flag_reaches_config() {
        let cmd = parse(&argv("run --sybil-noise 0.05 --quiet")).unwrap();
        match cmd {
            Command::Run(r) => {
                assert!((r.config.sybil_noise - 0.05).abs() < 1e-6);
                assert!(!r.live);
            }
            _ => panic!(),
        }
    }
}
