//! # fabflip-cli
//!
//! Command-line front end for the `fabflip` testbed. Subcommands:
//!
//! * `list` — the available attacks (with their Table I assumption
//!   profiles) and defenses,
//! * `run` — one federated-learning simulation with live per-round
//!   progress, e.g.
//!
//! ```sh
//! fabflip-cli run --task fashion --attack zka-g --defense mkrum --rounds 20
//! fabflip-cli run --task cifar --attack min-max --defense bulyan --beta 0.1
//! fabflip-cli run --task fashion --attack zka-r --defense foolsgold --sybil-noise 0.02
//! ```
//!
//! The argument parser is hand-rolled (no CLI dependency) and exposed here
//! for testing.

use fabflip::ZkaConfig;
use fabflip_agg::DefenseKind;
use fabflip_fl::{AttackSpec, CheckpointSpec, FaultPlan, FlConfig, StragglerPolicy, TaskKind};

/// A parsed `run` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    /// The full simulation config.
    pub config: FlConfig,
    /// Emit one line per round while running.
    pub live: bool,
    /// Emit the summary as JSON instead of text.
    pub json: bool,
    /// Crash-safe checkpointing (`--checkpoint-dir`), if requested.
    pub checkpoint: Option<CheckpointSpec>,
}

/// Top-level parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `list`
    List,
    /// `run …` (boxed: the config dwarfs the other variants).
    Run(Box<RunArgs>),
    /// `help` or `--help`
    Help,
}

/// Parse error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Parses an attack name (the labels used across the repo and the paper).
///
/// # Errors
///
/// Returns a message listing the valid names.
pub fn parse_attack(name: &str) -> Result<AttackSpec, ParseError> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "none" => AttackSpec::None,
        "lie" => AttackSpec::Lie,
        "fang" => AttackSpec::Fang,
        "min-max" | "minmax" => AttackSpec::MinMax,
        "min-sum" | "minsum" => AttackSpec::MinSum,
        "random" | "random-weights" => AttackSpec::RandomWeights,
        "real-data" | "realdata" => AttackSpec::RealData { lambda: 1.0 },
        "zka-r" | "zkar" => AttackSpec::ZkaR {
            cfg: ZkaConfig::paper(),
        },
        "zka-g" | "zkag" => AttackSpec::ZkaG {
            cfg: ZkaConfig::paper(),
        },
        "zka-r-static" => AttackSpec::ZkaR {
            cfg: ZkaConfig::static_variant(),
        },
        "zka-g-static" => AttackSpec::ZkaG {
            cfg: ZkaConfig::static_variant(),
        },
        other => {
            return Err(ParseError(format!(
                "unknown attack `{other}`; one of: none, lie, fang, min-max, min-sum, random, \
                 real-data, zka-r, zka-g, zka-r-static, zka-g-static"
            )))
        }
    })
}

/// Parses a defense name.
///
/// # Errors
///
/// Returns a message listing the valid names.
pub fn parse_defense(name: &str) -> Result<DefenseKind, ParseError> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "fedavg" | "none" => DefenseKind::FedAvg,
        "krum" => DefenseKind::Krum { f: 2 },
        "mkrum" | "multi-krum" => DefenseKind::MKrum { f: 2 },
        "trmean" | "trimmed-mean" => DefenseKind::TrMean { trim: 2 },
        "median" => DefenseKind::Median,
        "bulyan" => DefenseKind::Bulyan { f: 2 },
        "foolsgold" => DefenseKind::FoolsGold,
        "normbound" | "norm-bound" => DefenseKind::NormBound {
            max_norm_milli: 500,
        },
        other => {
            return Err(ParseError(format!(
                "unknown defense `{other}`; one of: fedavg, krum, mkrum, trmean, median, bulyan, \
                 foolsgold, normbound"
            )))
        }
    })
}

/// Parses a task name.
///
/// # Errors
///
/// Returns a message listing the valid names.
pub fn parse_task(name: &str) -> Result<TaskKind, ParseError> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "fashion" | "fashion-mnist" => TaskKind::Fashion,
        "cifar" | "cifar-10" | "cifar10" => TaskKind::Cifar,
        other => {
            return Err(ParseError(format!(
                "unknown task `{other}`; fashion or cifar"
            )))
        }
    })
}

fn take_value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> Result<&'a str, ParseError> {
    *i += 1;
    args.get(*i)
        .map(String::as_str)
        .ok_or_else(|| ParseError(format!("{flag} needs a value")))
}

/// Parses a full command line (without the program name).
///
/// # Errors
///
/// Returns a user-facing message for unknown subcommands, flags or values.
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    match args.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => Ok(Command::Help),
        Some("list") => Ok(Command::List),
        Some("run") => {
            let mut task = TaskKind::Fashion;
            let mut attack = AttackSpec::None;
            let mut defense = DefenseKind::FedAvg;
            let mut rounds: Option<usize> = None;
            let mut beta: Option<f64> = None;
            let mut seed: u64 = 1;
            let mut sybil_noise: f32 = 0.0;
            let mut live = true;
            let mut json = false;
            let mut faults = FaultPlan::default();
            let mut stale_policy = false;
            let mut stale_discount: f32 = 1.0;
            let mut checkpoint_dir: Option<String> = None;
            let mut checkpoint_every: usize = 5;
            let mut i = 1usize;
            while i < args.len() {
                match args[i].as_str() {
                    "--task" => task = parse_task(take_value(args, &mut i, "--task")?)?,
                    "--attack" => attack = parse_attack(take_value(args, &mut i, "--attack")?)?,
                    "--defense" => defense = parse_defense(take_value(args, &mut i, "--defense")?)?,
                    "--rounds" => {
                        rounds = Some(
                            take_value(args, &mut i, "--rounds")?
                                .parse()
                                .map_err(|_| ParseError("--rounds needs an integer".into()))?,
                        )
                    }
                    "--beta" => {
                        beta = Some(
                            take_value(args, &mut i, "--beta")?
                                .parse()
                                .map_err(|_| ParseError("--beta needs a number".into()))?,
                        )
                    }
                    "--seed" => {
                        seed = take_value(args, &mut i, "--seed")?
                            .parse()
                            .map_err(|_| ParseError("--seed needs an integer".into()))?
                    }
                    "--sybil-noise" => {
                        sybil_noise = take_value(args, &mut i, "--sybil-noise")?
                            .parse()
                            .map_err(|_| ParseError("--sybil-noise needs a number".into()))?
                    }
                    "--dropout" => {
                        faults.dropout = take_value(args, &mut i, "--dropout")?
                            .parse()
                            .map_err(|_| ParseError("--dropout needs a rate in [0,1]".into()))?
                    }
                    "--stragglers" => {
                        faults.straggler = take_value(args, &mut i, "--stragglers")?
                            .parse()
                            .map_err(|_| ParseError("--stragglers needs a rate in [0,1]".into()))?
                    }
                    "--malformed" => {
                        faults.malformed = take_value(args, &mut i, "--malformed")?
                            .parse()
                            .map_err(|_| ParseError("--malformed needs a rate in [0,1]".into()))?
                    }
                    "--straggler-policy" => match take_value(args, &mut i, "--straggler-policy")? {
                        "drop" => stale_policy = false,
                        "stale" => stale_policy = true,
                        other => {
                            return Err(ParseError(format!(
                                "unknown straggler policy `{other}`; drop or stale"
                            )))
                        }
                    },
                    "--stale-discount" => {
                        stale_discount = take_value(args, &mut i, "--stale-discount")?
                            .parse()
                            .map_err(|_| {
                                ParseError("--stale-discount needs a factor in [0,1]".into())
                            })?
                    }
                    "--checkpoint-dir" => {
                        checkpoint_dir =
                            Some(take_value(args, &mut i, "--checkpoint-dir")?.to_string())
                    }
                    "--checkpoint-every" => {
                        checkpoint_every = take_value(args, &mut i, "--checkpoint-every")?
                            .parse()
                            .map_err(|_| {
                            ParseError("--checkpoint-every needs an integer".into())
                        })?
                    }
                    "--quiet" => live = false,
                    "--json" => json = true,
                    other => return Err(ParseError(format!("unknown flag `{other}`"))),
                }
                i += 1;
            }
            if !(0.0..=1.0).contains(&stale_discount) {
                return Err(ParseError(
                    "--stale-discount needs a factor in [0,1]".into(),
                ));
            }
            if stale_policy {
                faults.straggler_policy = StragglerPolicy::Stale {
                    discount_milli: (stale_discount * 1000.0).round() as u32,
                };
            }
            let mut builder = FlConfig::builder(task)
                .attack(attack)
                .defense(defense)
                .seed(seed)
                .sybil_noise(sybil_noise)
                .faults(faults);
            if let Some(r) = rounds {
                builder = builder.rounds(r);
            }
            if let Some(b) = beta {
                builder = builder.beta(b);
            }
            Ok(Command::Run(Box::new(RunArgs {
                config: builder.build(),
                live,
                json,
                checkpoint: checkpoint_dir.map(|d| CheckpointSpec::new(d, checkpoint_every)),
            })))
        }
        Some(other) => Err(ParseError(format!(
            "unknown subcommand `{other}`; try `list`, `run` or `help`"
        ))),
    }
}

/// The `help` text.
pub fn help_text() -> &'static str {
    "fabflip-cli — zero-knowledge FL poisoning testbed

USAGE:
    fabflip-cli list
    fabflip-cli run [--task fashion|cifar] [--attack NAME] [--defense NAME]
                    [--rounds N] [--beta B] [--seed S] [--sybil-noise X]
                    [--dropout R] [--stragglers R] [--straggler-policy drop|stale]
                    [--stale-discount F] [--malformed R]
                    [--checkpoint-dir PATH] [--checkpoint-every N]
                    [--quiet] [--json]

FAULTS (deterministic per seed/round/client; rates in [0,1], sum ≤ 1):
    --dropout R            clients unreachable before local compute
    --stragglers R         submissions late; `drop` loses them, `stale`
                           delivers next round weighted by --stale-discount
    --malformed R          submissions corrupted in transit (NaN/truncated/
                           overlong/zeroed) and quarantined by the server

CHECKPOINTING:
    --checkpoint-dir PATH  save crash-safe state there; an interrupted run
                           with the same config resumes automatically
    --checkpoint-every N   rounds between saves (default 5)

EXAMPLES:
    fabflip-cli run --task fashion --attack zka-g --defense mkrum --rounds 20
    fabflip-cli run --task cifar --attack min-max --defense bulyan --beta 0.1
    fabflip-cli run --attack random --defense krum --dropout 0.2 --malformed 0.05
    fabflip-cli run --rounds 50 --checkpoint-dir ckpts --checkpoint-every 10
    fabflip-cli list
"
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_names_case_insensitively() {
        assert_eq!(parse_attack("ZKA-G").unwrap().label(), "ZKA-G");
        assert_eq!(parse_attack("minmax").unwrap(), AttackSpec::MinMax);
        assert_eq!(parse_defense("MKRUM").unwrap().label(), "mKrum");
        assert_eq!(parse_task("CIFAR10").unwrap(), TaskKind::Cifar);
        assert!(parse_attack("bogus").is_err());
        assert!(parse_defense("bogus").is_err());
        assert!(parse_task("bogus").is_err());
    }

    #[test]
    fn parses_a_full_run_command() {
        let cmd = parse(&argv(
            "run --task cifar --attack zka-r --defense bulyan --rounds 7 --beta 0.1 --seed 9 --json",
        ))
        .unwrap();
        match cmd {
            Command::Run(r) => {
                assert_eq!(r.config.task, TaskKind::Cifar);
                assert_eq!(r.config.attack.label(), "ZKA-R");
                assert_eq!(r.config.defense.label(), "Bulyan");
                assert_eq!(r.config.rounds, 7);
                assert_eq!(r.config.beta, 0.1);
                assert_eq!(r.config.seed, 9);
                assert!(r.json);
                assert!(r.live);
            }
            other => panic!("expected run, got {other:?}"),
        }
    }

    #[test]
    fn defaults_are_sensible() {
        let cmd = parse(&argv("run")).unwrap();
        match cmd {
            Command::Run(r) => {
                assert_eq!(r.config.task, TaskKind::Fashion);
                assert_eq!(r.config.attack, AttackSpec::None);
                assert!(!r.json);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn help_and_list_and_errors() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("list")).unwrap(), Command::List);
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("run --rounds")).is_err());
        assert!(parse(&argv("run --rounds x")).is_err());
        assert!(parse(&argv("run --whatever")).is_err());
        assert!(!help_text().is_empty());
    }

    #[test]
    fn fault_flags_reach_the_config() {
        let cmd = parse(&argv(
            "run --dropout 0.2 --stragglers 0.1 --straggler-policy stale --stale-discount 0.5 \
             --malformed 0.05",
        ))
        .unwrap();
        match cmd {
            Command::Run(r) => {
                let f = &r.config.faults;
                assert!((f.dropout - 0.2).abs() < 1e-6);
                assert!((f.straggler - 0.1).abs() < 1e-6);
                assert!((f.malformed - 0.05).abs() < 1e-6);
                assert_eq!(
                    f.straggler_policy,
                    StragglerPolicy::Stale {
                        discount_milli: 500
                    }
                );
                assert!(r.checkpoint.is_none());
            }
            _ => panic!(),
        }
        // Default policy stays Drop; the discount flag alone changes nothing.
        match parse(&argv("run --stragglers 0.1 --stale-discount 0.3")).unwrap() {
            Command::Run(r) => {
                assert_eq!(r.config.faults.straggler_policy, StragglerPolicy::Drop)
            }
            _ => panic!(),
        }
        assert!(parse(&argv("run --dropout x")).is_err());
        assert!(parse(&argv("run --straggler-policy eventually")).is_err());
        assert!(parse(&argv("run --stale-discount 1.5")).is_err());
    }

    #[test]
    fn checkpoint_flags_build_a_spec() {
        match parse(&argv("run --checkpoint-dir ckpts --checkpoint-every 10")).unwrap() {
            Command::Run(r) => {
                assert_eq!(r.checkpoint, Some(CheckpointSpec::new("ckpts", 10)));
            }
            _ => panic!(),
        }
        // --checkpoint-every defaults to 5 and is inert without a dir.
        match parse(&argv("run --checkpoint-dir out")).unwrap() {
            Command::Run(r) => assert_eq!(r.checkpoint, Some(CheckpointSpec::new("out", 5))),
            _ => panic!(),
        }
        match parse(&argv("run --checkpoint-every 3")).unwrap() {
            Command::Run(r) => assert!(r.checkpoint.is_none()),
            _ => panic!(),
        }
        assert!(parse(&argv("run --checkpoint-every x")).is_err());
    }

    #[test]
    fn sybil_noise_flag_reaches_config() {
        let cmd = parse(&argv("run --sybil-noise 0.05 --quiet")).unwrap();
        match cmd {
            Command::Run(r) => {
                assert!((r.config.sybil_noise - 0.05).abs() < 1e-6);
                assert!(!r.live);
            }
            _ => panic!(),
        }
    }
}
