//! `fabflip-cli` binary: see [`fabflip_cli`] for the parser and
//! `fabflip-cli help` for usage.

use fabflip::{ZkaConfig, ZkaG, ZkaR};
use fabflip_attacks::{Attack, Fang, Lie, MinMax, MinSum, RandomWeights};
use fabflip_cli::{help_text, parse, Command, LoadGenArgs, RunArgs, ServeArgs};
use fabflip_fl::{metrics::attack_success_rate, runner::acc_natk, simulate_with};
use fabflip_serve::server::{spawn, ServeError, ServeHandle, ServeOptions};
use fabflip_serve::{run_load, LoadGenOptions};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let outcome = match parse(&args) {
        Ok(Command::Help) => {
            print!("{}", help_text());
            Ok(())
        }
        Ok(Command::List) => {
            list();
            Ok(())
        }
        Ok(Command::Run(run_args)) => run(*run_args),
        Ok(Command::Serve(serve_args)) => serve(*serve_args),
        Ok(Command::LoadGen(lg_args)) => load_gen(*lg_args),
        Err(e) => {
            eprintln!("error: {e}\n");
            print!("{}", help_text());
            std::process::exit(2);
        }
    };
    if let Err(e) = outcome {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn list() {
    println!("attacks (name — benign-update oracle / raw data / defense-unknown):");
    let attacks: Vec<Box<dyn Attack>> = vec![
        Box::new(Lie::new()),
        Box::new(Fang::new()),
        Box::new(MinMax::new()),
        Box::new(MinSum::new()),
        Box::new(RandomWeights::new()),
        Box::new(ZkaR::new(ZkaConfig::paper())),
        Box::new(ZkaG::new(ZkaConfig::paper())),
    ];
    for a in &attacks {
        let c = a.capabilities();
        println!(
            "  {:<14} oracle={:<5} raw-data={:<5} defense-unknown={}",
            a.name(),
            c.needs_benign_updates,
            c.needs_raw_data,
            c.works_defense_unknown
        );
    }
    println!(
        "  {:<14} (real images + flipped label; needs --attack real-data)",
        "Real-data"
    );
    println!("\ndefenses: fedavg, krum, mkrum, trmean, median, bulyan, foolsgold, normbound");
    println!("tasks:    fashion (28x28x1, 2-conv CNN), cifar (32x32x3, 6-conv CNN)");
}

/// Runs the crash-tolerant aggregation server until shutdown (a SHUTDOWN
/// frame, typically from `load-gen --shutdown`).
fn serve(args: ServeArgs) -> Result<(), Box<dyn std::error::Error>> {
    let mut opts = ServeOptions::new(args.config, &args.ckpt_dir);
    opts.bind = args.bind;
    opts.workers = args.workers;
    opts.queue_cap = args.queue_cap;
    opts.deadline = Duration::from_millis(args.deadline_ms);
    let handle = spawn_retry(&opts)?;
    eprintln!(
        "serving on {} (checkpoints in {})",
        handle.addr(),
        args.ckpt_dir
    );
    if let Some(pf) = &args.port_file {
        // Atomic write: a watcher never reads a half-written address.
        let tmp = format!("{pf}.tmp");
        std::fs::write(&tmp, handle.addr().to_string())?;
        std::fs::rename(&tmp, pf)?;
    }
    let records = handle.join()?;
    eprintln!("shut down after {} closed rounds", records.len());
    Ok(())
}

/// Binds the listen address, retrying through the window where a killed
/// predecessor's socket still lingers (crash-restart has no `SO_REUSEADDR`
/// in std, so the first bind after `kill -9` can transiently fail).
fn spawn_retry(opts: &ServeOptions) -> Result<ServeHandle, ServeError> {
    let mut last = None;
    for _ in 0..400 {
        match spawn(opts.clone()) {
            Ok(h) => return Ok(h),
            Err(ServeError::Io(e)) => {
                last = Some(ServeError::Io(e));
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => return Err(e),
        }
    }
    Err(last.unwrap_or_else(|| ServeError::Config("bind retries exhausted".into())))
}

/// Drives the whole client fleet against a running server and reports
/// what the deployment did.
fn load_gen(args: LoadGenArgs) -> Result<(), Box<dyn std::error::Error>> {
    let mut opts = LoadGenOptions::new(args.config, args.addr);
    opts.senders = args.senders.max(1);
    opts.omit_every = args.omit_every;
    opts.shutdown_when_done = args.shutdown;
    let report = run_load(&opts)?;
    // FNV over the model bits: lets scripts compare two runs (or a serve
    // run against batch `run`) without shipping the whole model around.
    let mut model_bytes = Vec::with_capacity(report.final_global_bits.len() * 4);
    for b in &report.final_global_bits {
        model_bytes.extend_from_slice(&b.to_le_bytes());
    }
    let model_fnv = fabflip_serve::wire::fnv1a(&model_bytes);
    if args.json {
        let summary = serde_json::json!({
            "rounds_driven": report.rounds_driven,
            "accepted": report.accepted,
            "duplicates": report.duplicates,
            "quarantined": report.quarantined,
            "omitted": report.omitted,
            "busy": report.busy,
            "reconnects": report.reconnects,
            "retries": report.retries,
            "model_dim": report.final_global_bits.len(),
            "model_fnv": format!("{model_fnv:016x}"),
        });
        println!("{}", serde_json::to_string_pretty(&summary)?);
    } else {
        println!("rounds driven:   {}", report.rounds_driven);
        println!(
            "submissions:     {} accepted, {} duplicate, {} quarantined, {} omitted",
            report.accepted, report.duplicates, report.quarantined, report.omitted
        );
        println!(
            "repair work:     {} busy, {} reconnects, {} retries",
            report.busy, report.reconnects, report.retries
        );
        println!("final model fnv: {model_fnv:016x}");
    }
    Ok(())
}

fn run(args: RunArgs) -> Result<(), Box<dyn std::error::Error>> {
    let cfg = args.config;
    if args.live && !args.json {
        eprintln!(
            "task {} | attack {} | defense {} | β {} | {} rounds | seed {}",
            cfg.task.label(),
            cfg.attack.label(),
            cfg.defense.label(),
            cfg.beta,
            cfg.rounds,
            cfg.seed
        );
    }
    let result = simulate_with(&cfg, args.checkpoint.as_ref(), |r| {
        if args.live && !args.json {
            let mut line = format!(
                "round {:>3}: accuracy {:.3}  (malicious submitted {}, passed {})",
                r.round, r.accuracy, r.malicious_selected, r.malicious_passed
            );
            let faulted = r.dropped + r.straggling + r.quarantined + r.stale_quarantined;
            if faulted > 0 || r.stale > 0 {
                line.push_str(&format!(
                    "  [delivered {} (stale {}), dropped {}, straggling {}, quarantined {}]",
                    r.delivered,
                    r.stale,
                    r.dropped,
                    r.straggling,
                    r.quarantined + r.stale_quarantined
                ));
            }
            if r.skipped {
                line.push_str("  — no quorum, round skipped");
            }
            eprintln!("{line}");
        }
    })?;
    let natk = acc_natk(&cfg)?;
    let asr = attack_success_rate(natk, result.max_accuracy());
    let skipped = result.skipped_rounds();
    let dropped: usize = result.rounds.iter().map(|r| r.dropped).sum();
    let straggling: usize = result.rounds.iter().map(|r| r.straggling).sum();
    let quarantined: usize = result
        .rounds
        .iter()
        .map(|r| r.quarantined + r.stale_quarantined)
        .sum();
    if args.json {
        let summary = serde_json::json!({
            "task": cfg.task.label(),
            "attack": cfg.attack.label(),
            "defense": cfg.defense.label(),
            "beta": cfg.beta,
            "seed": cfg.seed,
            "acc_natk": natk,
            "acc_max": result.max_accuracy(),
            "acc_final": result.final_accuracy(),
            "asr": asr,
            "dpr": result.dpr(),
            "skipped_rounds": skipped,
            "dropped": dropped,
            "straggling": straggling,
            "quarantined": quarantined,
            "accuracy_trace": result.accuracy_trace(),
        });
        println!("{}", serde_json::to_string_pretty(&summary)?);
    } else {
        println!("clean ceiling (acc_natk):  {natk:.3}");
        println!("max accuracy under attack: {:.3}", result.max_accuracy());
        println!("attack success rate:       {:.1}%", asr * 100.0);
        match result.dpr() {
            Some(d) => println!("defense pass rate:         {:.1}%", d * 100.0),
            None => println!("defense pass rate:         NA"),
        }
        if cfg.faults.is_active() {
            println!(
                "faults:                    {dropped} dropped, {straggling} straggling, \
                 {quarantined} quarantined, {skipped} rounds skipped"
            );
        }
    }
    Ok(())
}
