//! `fabflip-cli` binary: see [`fabflip_cli`] for the parser and
//! `fabflip-cli help` for usage.

use fabflip::{ZkaConfig, ZkaG, ZkaR};
use fabflip_attacks::{Attack, Fang, Lie, MinMax, MinSum, RandomWeights};
use fabflip_cli::{help_text, parse, Command, RunArgs};
use fabflip_fl::{metrics::attack_success_rate, runner::acc_natk, simulate_with};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse(&args) {
        Ok(Command::Help) => print!("{}", help_text()),
        Ok(Command::List) => list(),
        Ok(Command::Run(run_args)) => {
            if let Err(e) = run(*run_args) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("error: {e}\n");
            print!("{}", help_text());
            std::process::exit(2);
        }
    }
}

fn list() {
    println!("attacks (name — benign-update oracle / raw data / defense-unknown):");
    let attacks: Vec<Box<dyn Attack>> = vec![
        Box::new(Lie::new()),
        Box::new(Fang::new()),
        Box::new(MinMax::new()),
        Box::new(MinSum::new()),
        Box::new(RandomWeights::new()),
        Box::new(ZkaR::new(ZkaConfig::paper())),
        Box::new(ZkaG::new(ZkaConfig::paper())),
    ];
    for a in &attacks {
        let c = a.capabilities();
        println!(
            "  {:<14} oracle={:<5} raw-data={:<5} defense-unknown={}",
            a.name(),
            c.needs_benign_updates,
            c.needs_raw_data,
            c.works_defense_unknown
        );
    }
    println!(
        "  {:<14} (real images + flipped label; needs --attack real-data)",
        "Real-data"
    );
    println!("\ndefenses: fedavg, krum, mkrum, trmean, median, bulyan, foolsgold, normbound");
    println!("tasks:    fashion (28x28x1, 2-conv CNN), cifar (32x32x3, 6-conv CNN)");
}

fn run(args: RunArgs) -> Result<(), Box<dyn std::error::Error>> {
    let cfg = args.config;
    if args.live && !args.json {
        eprintln!(
            "task {} | attack {} | defense {} | β {} | {} rounds | seed {}",
            cfg.task.label(),
            cfg.attack.label(),
            cfg.defense.label(),
            cfg.beta,
            cfg.rounds,
            cfg.seed
        );
    }
    let result = simulate_with(&cfg, args.checkpoint.as_ref(), |r| {
        if args.live && !args.json {
            let mut line = format!(
                "round {:>3}: accuracy {:.3}  (malicious submitted {}, passed {})",
                r.round, r.accuracy, r.malicious_selected, r.malicious_passed
            );
            let faulted = r.dropped + r.straggling + r.quarantined + r.stale_quarantined;
            if faulted > 0 || r.stale > 0 {
                line.push_str(&format!(
                    "  [delivered {} (stale {}), dropped {}, straggling {}, quarantined {}]",
                    r.delivered,
                    r.stale,
                    r.dropped,
                    r.straggling,
                    r.quarantined + r.stale_quarantined
                ));
            }
            if r.skipped {
                line.push_str("  — no quorum, round skipped");
            }
            eprintln!("{line}");
        }
    })?;
    let natk = acc_natk(&cfg)?;
    let asr = attack_success_rate(natk, result.max_accuracy());
    let skipped = result.skipped_rounds();
    let dropped: usize = result.rounds.iter().map(|r| r.dropped).sum();
    let straggling: usize = result.rounds.iter().map(|r| r.straggling).sum();
    let quarantined: usize = result
        .rounds
        .iter()
        .map(|r| r.quarantined + r.stale_quarantined)
        .sum();
    if args.json {
        let summary = serde_json::json!({
            "task": cfg.task.label(),
            "attack": cfg.attack.label(),
            "defense": cfg.defense.label(),
            "beta": cfg.beta,
            "seed": cfg.seed,
            "acc_natk": natk,
            "acc_max": result.max_accuracy(),
            "acc_final": result.final_accuracy(),
            "asr": asr,
            "dpr": result.dpr(),
            "skipped_rounds": skipped,
            "dropped": dropped,
            "straggling": straggling,
            "quarantined": quarantined,
            "accuracy_trace": result.accuracy_trace(),
        });
        println!("{}", serde_json::to_string_pretty(&summary)?);
    } else {
        println!("clean ceiling (acc_natk):  {natk:.3}");
        println!("max accuracy under attack: {:.3}", result.max_accuracy());
        println!("attack success rate:       {:.1}%", asr * 100.0);
        match result.dpr() {
            Some(d) => println!("defense pass rate:         {:.1}%", d * 100.0),
            None => println!("defense pass rate:         NA"),
        }
        if cfg.faults.is_active() {
            println!(
                "faults:                    {dropped} dropped, {straggling} straggling, \
                 {quarantined} quarantined, {skipped} rounds skipped"
            );
        }
    }
    Ok(())
}
