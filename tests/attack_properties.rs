//! Property-based tests on the attack algebra: the crafted updates must
//! satisfy each attack's defining constraint for arbitrary benign-update
//! geometries, not just hand-picked fixtures.

use fabflip_attacks::{Attack, AttackContext, Fang, Lie, MinMax, MinSum, TaskInfo};
use fabflip_nn::{Dense, Sequential};
use fabflip_tensor::vecops;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn toy_task() -> TaskInfo {
    TaskInfo {
        channels: 1,
        height: 2,
        width: 2,
        num_classes: 2,
        synth_set_size: 4,
        local_lr: 0.1,
        local_batch: 2,
        local_epochs: 1,
    }
}

fn toy_builder(rng: &mut StdRng) -> Sequential {
    let mut m = Sequential::new();
    m.push(Dense::new(4, 2, rng));
    m
}

fn craft(attack: &mut dyn Attack, benign: &[Vec<f32>], global: &[f32]) -> Vec<f32> {
    let task = toy_task();
    let ctx = AttackContext {
        global,
        prev_global: None,
        benign_updates: benign,
        n_selected: 10,
        n_malicious_selected: 2,
        task: &task,
        build_model: &toy_builder,
    };
    let mut rng = StdRng::seed_from_u64(7);
    attack
        .craft(&ctx, &mut rng)
        .expect("craft succeeds on finite input")
}

fn benign_strategy(d: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    proptest::collection::vec(proptest::collection::vec(-3.0f32..3.0, d), 3..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn lie_update_is_exactly_mean_plus_z_std(benign in benign_strategy(6)) {
        let global = vec![0.0f32; 6];
        let w = craft(&mut Lie::with_z(1.5), &benign, &global);
        let refs: Vec<&[f32]> = benign.iter().map(|u| u.as_slice()).collect();
        let mean = vecops::mean(&refs);
        let std = vecops::std_dev(&refs);
        for j in 0..6 {
            let expect = mean[j] + 1.5 * std[j];
            prop_assert!((w[j] - expect).abs() < 1e-4, "coord {}: {} vs {}", j, w[j], expect);
        }
    }

    #[test]
    fn fang_lands_outside_the_benign_interval_against_the_direction(
        benign in benign_strategy(5)
    ) {
        let global = vec![0.0f32; 5];
        let w = craft(&mut Fang::new(), &benign, &global);
        let refs: Vec<&[f32]> = benign.iter().map(|u| u.as_slice()).collect();
        let mean = vecops::mean(&refs);
        for j in 0..5 {
            let lo = refs.iter().map(|r| r[j]).fold(f32::INFINITY, f32::min);
            let hi = refs.iter().map(|r| r[j]).fold(f32::NEG_INFINITY, f32::max);
            if mean[j] - global[j] > 0.0 {
                prop_assert!(w[j] <= lo + 1e-5, "coord {} should undershoot", j);
            } else {
                prop_assert!(w[j] >= hi - 1e-5, "coord {} should overshoot", j);
            }
        }
    }

    #[test]
    fn minmax_never_violates_the_max_distance_budget(benign in benign_strategy(6)) {
        let global = vec![0.0f32; 6];
        let w = craft(&mut MinMax::new(), &benign, &global);
        let refs: Vec<&[f32]> = benign.iter().map(|u| u.as_slice()).collect();
        let budget = vecops::pairwise_sq_distances(&refs)
            .iter()
            .flatten()
            .fold(0.0f32, |a, &b| a.max(b))
            .sqrt();
        for r in &refs {
            prop_assert!(
                vecops::l2_distance(&w, r) <= budget * 1.01 + 1e-4,
                "stealth constraint violated"
            );
        }
        prop_assert!(w.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn minsum_never_violates_the_sum_distance_budget(benign in benign_strategy(6)) {
        let global = vec![0.0f32; 6];
        let w = craft(&mut MinSum::new(), &benign, &global);
        let refs: Vec<&[f32]> = benign.iter().map(|u| u.as_slice()).collect();
        let budget = vecops::pairwise_sq_distances(&refs)
            .iter()
            .map(|row| row.iter().sum::<f32>())
            .fold(0.0f32, f32::max);
        let total: f32 = refs.iter().map(|r| vecops::sq_distance(&w, r)).sum();
        prop_assert!(total <= budget * 1.01 + 1e-4, "{} > {}", total, budget);
    }

    #[test]
    fn oracle_attacks_ignore_nonfinite_benign_updates(mut benign in benign_strategy(4)) {
        // Poison one benign update with NaN: the crafted update must remain
        // finite and identical to crafting without the poisoned entry.
        let global = vec![0.0f32; 4];
        let clean = benign.clone();
        benign.push(vec![f32::NAN, 1.0, 2.0, f32::INFINITY]);
        let w_clean = craft(&mut Lie::with_z(1.0), &clean, &global);
        let w_poisoned = craft(&mut Lie::with_z(1.0), &benign, &global);
        prop_assert_eq!(w_clean, w_poisoned);
    }
}
