//! Calibration tests: the procedural datasets must be learnable by the
//! paper's classifiers — high ceiling for the fashion-like task, a harder
//! (lower-ceiling) cifar-like task. These pin the substitution argument of
//! DESIGN.md §3.

use fabflip_data::{Dataset, SynthSpec};
use fabflip_nn::losses::{accuracy, softmax_cross_entropy_hard};
use fabflip_nn::{models, Sequential};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Centralized SGD training; returns test accuracy.
fn train_centrally(
    model: &mut Sequential,
    train: &Dataset,
    test: &Dataset,
    epochs: usize,
    batch: usize,
    lr: f32,
    seed: u64,
) -> f32 {
    let mut rng = StdRng::seed_from_u64(seed);
    let all: Vec<usize> = (0..train.len()).collect();
    for _ in 0..epochs {
        for b in train.shuffled_batches(&all, batch, &mut rng) {
            model
                .train_step(&b.images, lr, |logits| {
                    softmax_cross_entropy_hard(logits, &b.labels)
                })
                .expect("training step");
        }
    }
    let tb = test.gather(&(0..test.len()).collect::<Vec<_>>());
    let logits = model.forward(&tb.images).expect("forward");
    accuracy(&logits, &tb.labels)
}

#[test]
fn fashion_like_reaches_high_accuracy() {
    let spec = SynthSpec::fashion_like();
    let train = Dataset::synthesize_split(&spec, 1200, 1, 100);
    let test = Dataset::synthesize_split(&spec, 400, 1, 200);
    let mut rng = StdRng::seed_from_u64(0);
    let mut model = models::fashion_cnn(&mut rng);
    let acc = train_centrally(&mut model, &train, &test, 4, 32, 0.08, 3);
    assert!(acc > 0.70, "fashion-like accuracy too low: {acc}");
}

#[test]
fn cifar_like_is_harder_but_learnable() {
    let spec = SynthSpec::cifar_like();
    let train = Dataset::synthesize_split(&spec, 1200, 1, 100);
    let test = Dataset::synthesize_split(&spec, 400, 1, 200);
    let mut rng = StdRng::seed_from_u64(0);
    let mut model = models::cifar_cnn(&mut rng);
    let acc = train_centrally(&mut model, &train, &test, 4, 32, 0.05, 3);
    assert!(acc > 0.25, "cifar-like accuracy too low: {acc}");
    assert!(acc < 0.95, "cifar-like unexpectedly trivial: {acc}");
}
