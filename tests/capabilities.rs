//! Table I of the paper, as executable assertions: the assumption profile
//! of every attack in the comparison.

use fabflip::{ZkaConfig, ZkaG, ZkaR};
use fabflip_attacks::{Attack, Fang, Lie, MinMax, RandomWeights};

#[test]
fn table1_lie_row() {
    let c = Lie::new().capabilities();
    assert!(c.needs_benign_updates, "LIE eavesdrops on benign updates");
    assert!(c.works_defense_unknown);
    assert!(!c.needs_raw_data);
    assert!(
        !c.handles_heterogeneity,
        "LIE was not evaluated under heterogeneity"
    );
    assert!(c.defenses_known.contains(&"TRmean"));
    assert!(c.defenses_known.contains(&"Krum"));
}

#[test]
fn table1_fang_row() {
    let c = Fang::new().capabilities();
    assert!(c.needs_benign_updates);
    assert!(
        !c.works_defense_unknown,
        "Fang needs the deployed defense for stealth"
    );
    assert!(c.handles_heterogeneity);
    assert!(c.defenses_known.contains(&"Median"));
}

#[test]
fn table1_minmax_row() {
    let c = MinMax::new().capabilities();
    assert!(c.needs_benign_updates);
    assert!(c.works_defense_unknown);
    assert!(c.handles_heterogeneity);
    assert!(c.defenses_known.len() >= 4);
}

#[test]
fn zka_rows_are_strictly_weaker_assumptions() {
    // The paper's core claim: ZKA needs neither benign updates nor raw data
    // nor defense knowledge — no baseline matches that profile.
    for zka in [
        ZkaR::new(ZkaConfig::paper()).capabilities(),
        ZkaG::new(ZkaConfig::paper()).capabilities(),
        RandomWeights::new().capabilities(),
    ] {
        assert!(!zka.needs_benign_updates);
        assert!(!zka.needs_raw_data);
        assert!(zka.works_defense_unknown);
        assert!(zka.handles_heterogeneity);
        assert!(zka.defenses_known.is_empty());
    }
    for baseline in [
        Lie::new().capabilities(),
        Fang::new().capabilities(),
        MinMax::new().capabilities(),
    ] {
        assert!(
            baseline.needs_benign_updates,
            "every baseline assumes the benign-update oracle"
        );
    }
}
