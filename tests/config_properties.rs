//! Property tests on configuration plumbing: serde stability (the result
//! cache keys on serialized configs) and validation monotonicity.

use fabflip_agg::DefenseKind;
use fabflip_fl::{AttackSpec, FlConfig, TaskKind};
use proptest::prelude::*;

fn task_strategy() -> impl Strategy<Value = TaskKind> {
    prop_oneof![Just(TaskKind::Fashion), Just(TaskKind::Cifar)]
}

fn defense_strategy() -> impl Strategy<Value = DefenseKind> {
    prop_oneof![
        Just(DefenseKind::FedAvg),
        (1usize..3).prop_map(|f| DefenseKind::MKrum { f }),
        (1usize..3).prop_map(|trim| DefenseKind::TrMean { trim }),
        Just(DefenseKind::Median),
        (1usize..3).prop_map(|f| DefenseKind::Bulyan { f }),
        Just(DefenseKind::FoolsGold),
        (1u32..2000).prop_map(|m| DefenseKind::NormBound { max_norm_milli: m }),
    ]
}

fn attack_strategy() -> impl Strategy<Value = AttackSpec> {
    prop_oneof![
        Just(AttackSpec::None),
        Just(AttackSpec::Lie),
        Just(AttackSpec::Fang),
        Just(AttackSpec::MinMax),
        Just(AttackSpec::MinSum),
        Just(AttackSpec::RandomWeights),
        (0.0f32..2.0).prop_map(|lambda| AttackSpec::RealData { lambda }),
        Just(AttackSpec::ZkaR {
            cfg: fabflip::ZkaConfig::paper()
        }),
        Just(AttackSpec::ZkaG {
            cfg: fabflip::ZkaConfig::fast()
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn config_serde_roundtrip(
        task in task_strategy(),
        defense in defense_strategy(),
        attack in attack_strategy(),
        // Grid betas only: arbitrary f64s are not guaranteed bit-exact
        // through JSON, and every real experiment uses one of these.
        beta in prop_oneof![Just(0.1f64), Just(0.5), Just(0.9)],
        seed in 0u64..1000,
    ) {
        let cfg = FlConfig::builder(task)
            .defense(defense)
            .attack(attack)
            .beta(beta)
            .seed(seed)
            .build();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: FlConfig = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(cfg, back);
    }

    #[test]
    fn serialization_is_deterministic(defense in defense_strategy(), attack in attack_strategy()) {
        // Cache keys rely on serialize(cfg) being a pure function.
        let cfg = FlConfig::builder(TaskKind::Fashion).defense(defense).attack(attack).build();
        let a = serde_json::to_string(&cfg).unwrap();
        let b = serde_json::to_string(&cfg).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn zero_sybil_noise_does_not_appear_in_serialization(seed in 0u64..100) {
        // Backwards-compatible cache keys: the default sybil_noise must be
        // invisible in JSON.
        let cfg = FlConfig::builder(TaskKind::Fashion).seed(seed).build();
        let json = serde_json::to_string(&cfg).unwrap();
        prop_assert!(!json.contains("sybil_noise"));
        let mut noisy = cfg.clone();
        noisy.sybil_noise = 0.5;
        let json = serde_json::to_string(&noisy).unwrap();
        prop_assert!(json.contains("sybil_noise"));
    }

    #[test]
    fn validate_accepts_all_built_configs(
        task in task_strategy(),
        defense in defense_strategy(),
        attack in attack_strategy(),
    ) {
        let cfg = FlConfig::builder(task).defense(defense).attack(attack).build();
        prop_assert!(cfg.validate().is_ok());
        prop_assert!(cfg.n_malicious() <= cfg.n_clients / 2);
    }
}
