//! Cross-crate integration tests of the FL simulator: determinism, attack
//! impact, defense behaviour, and metric plumbing.

use fabflip_agg::DefenseKind;
use fabflip_fl::{metrics::attack_success_rate, runner, simulate, AttackSpec, FlConfig, TaskKind};

fn small(attack: AttackSpec, defense: DefenseKind) -> FlConfig {
    FlConfig::builder(TaskKind::Fashion)
        .n_clients(20)
        .clients_per_round(8)
        .rounds(6)
        .train_size(400)
        .test_size(120)
        .synth_set_size(8)
        .attack(attack)
        .defense(defense)
        .seed(21)
        .build()
}

#[test]
fn same_seed_same_result_different_seed_different_result() {
    let cfg = small(AttackSpec::RandomWeights, DefenseKind::MKrum { f: 2 });
    let a = simulate(&cfg).unwrap();
    let b = simulate(&cfg).unwrap();
    assert_eq!(a, b, "simulation must be a pure function of its config");
    let mut cfg2 = cfg.clone();
    cfg2.seed += 1;
    let c = simulate(&cfg2).unwrap();
    assert_ne!(a.accuracy_trace(), c.accuracy_trace());
}

#[test]
fn random_weights_destroy_fedavg_but_not_mkrum() {
    // The motivating observation of Sec. IV-A: naive weight poisoning wrecks
    // an undefended server, while distance-based selection filters it out.
    // Needs a config whose clean run actually learns, so more rounds/epochs
    // than the smoke config.
    let grown = |attack: AttackSpec, defense: DefenseKind| {
        let mut cfg = small(attack, defense);
        cfg.rounds = 16;
        cfg.local_epochs = 3;
        cfg
    };
    let clean = simulate(&grown(AttackSpec::None, DefenseKind::FedAvg)).unwrap();
    assert!(
        clean.max_accuracy() > 0.25,
        "clean run failed to learn: {}",
        clean.max_accuracy()
    );
    let attacked_fedavg = simulate(&grown(AttackSpec::RandomWeights, DefenseKind::FedAvg)).unwrap();
    let attacked_mkrum = simulate(&grown(
        AttackSpec::RandomWeights,
        DefenseKind::MKrum { f: 2 },
    ))
    .unwrap();
    assert!(
        attacked_fedavg.max_accuracy() < clean.max_accuracy(),
        "random weights should hurt FedAvg: {} vs clean {}",
        attacked_fedavg.max_accuracy(),
        clean.max_accuracy()
    );
    // mKrum's protection manifests as filtering: almost no random-weight
    // update is selected, and the model still learns above chance. (A
    // direct accuracy comparison with attacked FedAvg is too noisy at this
    // scale — early random noise can accidentally regularize.)
    let dpr = attacked_mkrum.dpr().expect("mKrum reports a selection");
    assert!(
        dpr < 0.2,
        "mKrum let random weights through too often: {dpr}"
    );
    assert!(
        attacked_mkrum.max_accuracy() > 0.15,
        "mKrum-defended run collapsed: {}",
        attacked_mkrum.max_accuracy()
    );
}

#[test]
fn random_weights_rarely_pass_mkrum() {
    // Paper Sec. IV-A: random updates bypass mKrum in only a few percent of
    // cases. At this reduced scale we assert a loose upper bound.
    let r = simulate(&small(
        AttackSpec::RandomWeights,
        DefenseKind::MKrum { f: 2 },
    ))
    .unwrap();
    let dpr = r.dpr().expect("mKrum reports a selection");
    assert!(dpr < 0.35, "random weights passed mKrum too often: {dpr}");
}

#[test]
fn statistic_defenses_never_report_dpr() {
    for defense in [DefenseKind::Median, DefenseKind::TrMean { trim: 2 }] {
        let r = simulate(&small(AttackSpec::RandomWeights, defense)).unwrap();
        assert_eq!(r.dpr(), None, "{} must be NA", defense.label());
    }
}

#[test]
fn oracle_attacks_receive_benign_updates_and_zk_attacks_do_not_need_them() {
    // LIE requires the oracle; the simulator provides it, so the run works.
    let r = simulate(&small(AttackSpec::Lie, DefenseKind::TrMean { trim: 2 })).unwrap();
    assert_eq!(r.rounds.len(), 6);
    // ZKA-G runs with an empty oracle (zero-knowledge) — also fine.
    let r = simulate(&small(
        AttackSpec::ZkaG {
            cfg: fabflip::ZkaConfig::fast(),
        },
        DefenseKind::TrMean { trim: 2 },
    ))
    .unwrap();
    assert_eq!(r.rounds.len(), 6);
}

#[test]
fn extreme_heterogeneity_with_empty_shards_is_survivable() {
    // β = 0.05 concentrates classes on few clients; some clients own no
    // data and must silently skip. The simulation must still complete.
    let mut cfg = small(AttackSpec::None, DefenseKind::Median);
    cfg.beta = 0.05;
    let r = simulate(&cfg).unwrap();
    assert_eq!(r.rounds.len(), cfg.rounds);
}

#[test]
fn all_attacks_run_against_all_defenses_one_round() {
    // Smoke matrix: every attack × defense pair completes.
    let attacks = vec![
        AttackSpec::Lie,
        AttackSpec::Fang,
        AttackSpec::MinMax,
        AttackSpec::RandomWeights,
        AttackSpec::RealData { lambda: 1.0 },
        AttackSpec::ZkaR {
            cfg: fabflip::ZkaConfig::fast(),
        },
        AttackSpec::ZkaG {
            cfg: fabflip::ZkaConfig::fast(),
        },
    ];
    let defenses = vec![
        DefenseKind::FedAvg,
        DefenseKind::MKrum { f: 2 },
        DefenseKind::TrMean { trim: 2 },
        DefenseKind::Bulyan { f: 2 },
        DefenseKind::Median,
    ];
    for attack in &attacks {
        for defense in &defenses {
            let mut cfg = small(attack.clone(), *defense);
            cfg.rounds = 1;
            let r = simulate(&cfg).unwrap_or_else(|e| {
                panic!("{} vs {} failed: {e}", attack.label(), defense.label())
            });
            assert_eq!(r.rounds.len(), 1);
            assert!(r.rounds[0].accuracy.is_finite());
        }
    }
}

#[test]
fn asr_uses_paired_clean_baseline() {
    let cfg = small(AttackSpec::RandomWeights, DefenseKind::FedAvg);
    let natk = runner::acc_natk(&cfg).unwrap();
    let attacked = simulate(&cfg).unwrap();
    let asr = attack_success_rate(natk, attacked.max_accuracy());
    assert!((0.0..=1.0).contains(&asr));
    // A clean "attacked" run has (near) zero ASR against its own baseline.
    let clean_cfg = small(AttackSpec::None, DefenseKind::FedAvg);
    let clean = simulate(&clean_cfg).unwrap();
    let asr_clean =
        attack_success_rate(runner::acc_natk(&clean_cfg).unwrap(), clean.max_accuracy());
    assert!(asr_clean < 1e-6);
}
