//! End-to-end behaviour of the zero-knowledge attacks: they must damage an
//! undefended federation and be markedly stealthier than naive weight
//! poisoning — the two properties the paper's design hinges on.

use fabflip::ZkaConfig;
use fabflip_agg::DefenseKind;
use fabflip_fl::{simulate, AttackSpec, FlConfig, TaskKind};

fn cfg(attack: AttackSpec, defense: DefenseKind) -> FlConfig {
    FlConfig::builder(TaskKind::Fashion)
        .n_clients(20)
        .clients_per_round(8)
        .rounds(8)
        .local_epochs(2)
        .train_size(500)
        .test_size(150)
        .synth_set_size(10)
        .attack(attack)
        .defense(defense)
        .seed(33)
        .build()
}

#[test]
fn zka_r_damages_undefended_training() {
    let clean = simulate(&cfg(AttackSpec::None, DefenseKind::FedAvg)).unwrap();
    let attacked = simulate(&cfg(
        AttackSpec::ZkaR {
            cfg: ZkaConfig::fast(),
        },
        DefenseKind::FedAvg,
    ))
    .unwrap();
    assert!(
        attacked.max_accuracy() < clean.max_accuracy(),
        "ZKA-R failed to reduce accuracy: {} vs clean {}",
        attacked.max_accuracy(),
        clean.max_accuracy()
    );
}

#[test]
fn zka_g_damages_undefended_training() {
    let clean = simulate(&cfg(AttackSpec::None, DefenseKind::FedAvg)).unwrap();
    let attacked = simulate(&cfg(
        AttackSpec::ZkaG {
            cfg: ZkaConfig::fast(),
        },
        DefenseKind::FedAvg,
    ))
    .unwrap();
    assert!(
        attacked.max_accuracy() < clean.max_accuracy(),
        "ZKA-G failed to reduce accuracy: {} vs clean {}",
        attacked.max_accuracy(),
        clean.max_accuracy()
    );
}

#[test]
fn zka_is_stealthier_than_random_weights_under_mkrum() {
    // The paper's motivation (Sec. IV-A): random weights almost never pass
    // the selection defenses, while the fabricated-data updates do.
    let mkrum = DefenseKind::MKrum { f: 2 };
    let random = simulate(&cfg(AttackSpec::RandomWeights, mkrum)).unwrap();
    let zka_g = simulate(&cfg(
        AttackSpec::ZkaG {
            cfg: ZkaConfig::fast(),
        },
        mkrum,
    ))
    .unwrap();
    let dpr_random = random.dpr().expect("selection defense");
    let dpr_zka = zka_g.dpr().expect("selection defense");
    assert!(
        dpr_zka > dpr_random,
        "ZKA-G ({dpr_zka}) must pass mKrum more often than random weights ({dpr_random})"
    );
}

#[test]
fn zka_targets_stay_fixed_within_a_run_and_updates_vary_across_rounds() {
    // Indirect check through determinism: two identical runs give identical
    // traces (the fixed Ỹ and fixed Z make the attack reproducible).
    let c = cfg(
        AttackSpec::ZkaG {
            cfg: ZkaConfig::fast(),
        },
        DefenseKind::Median,
    );
    let a = simulate(&c).unwrap();
    let b = simulate(&c).unwrap();
    assert_eq!(a, b);
}

#[test]
fn foolsgold_catches_identical_copies_and_noise_evades_it() {
    // Sec. III-A of the paper: Sybil defenses would flag the ZKA adversary
    // (all clients submit one crafted update) — unless small perturbation
    // noise is added, which is why the paper excludes them.
    let base = cfg(
        AttackSpec::ZkaG {
            cfg: ZkaConfig::fast(),
        },
        DefenseKind::FoolsGold,
    );
    let identical = simulate(&base).unwrap();
    let mut noisy_cfg = base.clone();
    noisy_cfg.sybil_noise = 0.02;
    let noisy = simulate(&noisy_cfg).unwrap();
    let dpr_identical = identical.dpr().expect("FoolsGold reports a selection");
    let dpr_noisy = noisy.dpr().expect("FoolsGold reports a selection");
    assert!(
        dpr_noisy > dpr_identical,
        "perturbation should raise DPR: identical {dpr_identical} vs noisy {dpr_noisy}"
    );
    assert!(
        dpr_identical < 0.5,
        "identical sybils should mostly be caught: {dpr_identical}"
    );
}

#[test]
fn fltrust_resists_random_weights_where_fedavg_falls() {
    // Extension check: the root-of-trust defense keeps learning under the
    // naive attack because opposed/noise updates get zero trust.
    let base = cfg(AttackSpec::RandomWeights, DefenseKind::FedAvg);
    let mut trust_cfg = base.clone();
    trust_cfg.fltrust_root_size = Some(60);
    let fedavg = simulate(&base).unwrap();
    let fltrust = simulate(&trust_cfg).unwrap();
    assert!(
        fltrust.max_accuracy() >= fedavg.max_accuracy(),
        "fltrust {} should be at least as robust as fedavg {}",
        fltrust.max_accuracy(),
        fedavg.max_accuracy()
    );
    // Random weights should essentially never earn trust.
    let dpr = fltrust.dpr().expect("fltrust reports a selection");
    assert!(dpr < 0.5, "random weights earned trust too often: {dpr}");
}
